#include "flow/artifacts.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace fpgadbg::flow {

namespace {

using support::Result;
using support::Status;

// Shared small helpers: signed ints and coordinate pairs ride as u32 pairs
// (two's-complement round trip through static_cast is exact).
void write_int_vec(ByteWriter& w, const std::vector<int>& v) {
  w.u64(v.size());
  for (int x : v) w.u32(static_cast<std::uint32_t>(x));
}

std::vector<int> read_int_vec(ByteReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<int> v;
  if (n > r.remaining() / 4 + 1) return v;  // bounds guard before reserve
  v.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    v.push_back(static_cast<int>(r.u32()));
  }
  return v;
}

void write_pos_vec(ByteWriter& w, const std::vector<std::pair<int, int>>& v) {
  w.u64(v.size());
  for (const auto& [x, y] : v) {
    w.u32(static_cast<std::uint32_t>(x));
    w.u32(static_cast<std::uint32_t>(y));
  }
}

std::vector<std::pair<int, int>> read_pos_vec(ByteReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<std::pair<int, int>> v;
  if (n > r.remaining() / 8 + 1) return v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const int x = static_cast<int>(r.u32());
    const int y = static_cast<int>(r.u32());
    v.emplace_back(x, y);
  }
  return v;
}

void write_tt(ByteWriter& w, const logic::TruthTable& tt) {
  w.i32(tt.num_vars());
  w.u64_vec(tt.words());
}

logic::TruthTable read_tt(ByteReader& r) {
  const int num_vars = r.i32();
  std::vector<std::uint64_t> words = r.u64_vec();
  if (!r.ok() || num_vars < 0 || num_vars > logic::TruthTable::kMaxVars) {
    return logic::TruthTable(0);  // caller notices via r.ok()
  }
  return logic::TruthTable::from_words(num_vars, std::move(words));
}

void write_str_vec_vec(ByteWriter& w,
                       const std::vector<std::vector<std::string>>& v) {
  w.u64(v.size());
  for (const auto& inner : v) w.str_vec(inner);
}

std::vector<std::vector<std::string>> read_str_vec_vec(ByteReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<std::vector<std::string>> v;
  if (n > r.remaining() / 8 + 1) return v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) v.push_back(r.str_vec());
  return v;
}

/// Runs a replay-style rebuild, converting invariant violations (duplicate
/// names, dangling ids) raised by the construction API into a corrupt-
/// artifact status instead of letting them escape as exceptions.
template <typename F>
auto guarded(const char* what, F&& rebuild) -> decltype(rebuild()) {
  try {
    return rebuild();
  } catch (const std::exception& e) {
    return Status::corrupt_artifact(std::string(what) + ": " + e.what());
  }
}

}  // namespace

// --- netlist ---------------------------------------------------------------

void serialize_netlist(const netlist::Netlist& nl, ByteWriter& w) {
  using netlist::NodeKind;
  w.str(nl.model_name());
  w.u64(nl.num_nodes());
  std::size_t latch_cursor = 0;  // latches() is creation-ordered == id order
  for (netlist::NodeId id = 0; id < nl.num_nodes(); ++id) {
    const netlist::Node& n = nl.node(id);
    w.u8(static_cast<std::uint8_t>(n.kind));
    w.str(n.name);
    if (n.kind == NodeKind::kLogic) {
      w.u32_vec(n.fanins);
      write_tt(w, n.function);
    } else if (n.kind == NodeKind::kLatchOut) {
      // The latch's init value rides with its Q node so replay can call
      // add_latch directly; the driver comes in the trailing section (it
      // may have a larger id than the Q node).
      w.i32(nl.latches()[latch_cursor++].init_value);
    }
  }
  // Latch drivers in creation order (== id order of their kLatchOut nodes).
  w.u64(nl.latches().size());
  for (const netlist::Latch& l : nl.latches()) w.u32(l.input);
  w.u32_vec(nl.outputs());
  w.str_vec(nl.output_names());
}

Result<netlist::Netlist> deserialize_netlist(ByteReader& r) {
  using netlist::NodeKind;
  return guarded("netlist artifact", [&]() -> Result<netlist::Netlist> {
    netlist::Netlist nl(r.str());
    const std::uint64_t num_nodes = r.u64();
    std::vector<netlist::NodeId> latch_outs;
    for (std::uint64_t i = 0; i < num_nodes && r.ok(); ++i) {
      const auto kind = static_cast<NodeKind>(r.u8());
      const std::string name = r.str();
      if (!r.ok()) break;
      switch (kind) {
        case NodeKind::kConst0: nl.add_const0(name); break;
        case NodeKind::kInput: nl.add_input(name); break;
        case NodeKind::kParam: nl.add_param(name); break;
        case NodeKind::kLatchOut: {
          const int init = r.i32();
          latch_outs.push_back(nl.add_latch(name, netlist::kNullNode, init));
          break;
        }
        case NodeKind::kLogic: {
          std::vector<netlist::NodeId> fanins = r.u32_vec();
          logic::TruthTable tt = read_tt(r);
          if (!r.ok()) break;
          nl.add_logic(name, std::move(fanins), std::move(tt));
          break;
        }
        default:
          return Status::corrupt_artifact("netlist artifact: bad node kind");
      }
    }
    const std::uint64_t num_latches = r.u64();
    if (num_latches != latch_outs.size() || !r.ok()) {
      return r.ok() ? Status::corrupt_artifact(
                          "netlist artifact: latch count mismatch")
                    : r.status("netlist artifact");
    }
    for (std::uint64_t i = 0; i < num_latches; ++i) {
      const netlist::NodeId input = r.u32();
      if (!r.ok()) break;
      nl.set_latch_input(i, input);
    }
    const std::vector<netlist::NodeId> outputs = r.u32_vec();
    const std::vector<std::string> names = r.str_vec();
    if (!r.ok() || outputs.size() != names.size()) {
      return r.ok() ? Status::corrupt_artifact(
                          "netlist artifact: output name mismatch")
                    : r.status("netlist artifact");
    }
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      nl.add_output(outputs[i], names[i]);
    }
    nl.check();
    return nl;
  });
}

std::uint64_t netlist_content_hash(const netlist::Netlist& nl) {
  ByteWriter w;
  serialize_netlist(nl, w);
  return w.content_hash();
}

// --- instrument ------------------------------------------------------------

void serialize_instrumented(const debug::Instrumented& inst, ByteWriter& w) {
  serialize_netlist(inst.netlist, w);
  write_str_vec_vec(w, inst.lane_signals);
  write_str_vec_vec(w, inst.lane_params);
  w.str_vec(inst.trace_outputs);
}

Result<debug::Instrumented> deserialize_instrumented(ByteReader& r) {
  FPGADBG_ASSIGN_OR_RETURN(netlist::Netlist nl, deserialize_netlist(r));
  debug::Instrumented inst;
  inst.netlist = std::move(nl);
  inst.lane_signals = read_str_vec_vec(r);
  inst.lane_params = read_str_vec_vec(r);
  inst.trace_outputs = r.str_vec();
  FPGADBG_RETURN_IF_ERROR(r.status("instrument artifact"));
  return inst;
}

// --- mapped netlist / map result -------------------------------------------

void serialize_mapped_netlist(const map::MappedNetlist& mn, ByteWriter& w) {
  using map::MKind;
  w.str(mn.model_name());
  w.u64(mn.num_cells());
  std::size_t latch_cursor = 0;  // latches() is creation-ordered == id order
  for (map::CellId id = 0; id < mn.num_cells(); ++id) {
    const map::MCell& c = mn.cell(id);
    w.u8(static_cast<std::uint8_t>(c.kind));
    w.str(c.name);
    if (c.kind == MKind::kLut || c.kind == MKind::kTlut ||
        c.kind == MKind::kTcon) {
      w.u32_vec(c.data_inputs);
      w.u32_vec(c.param_inputs);
      write_tt(w, c.function);
    } else if (c.kind == MKind::kLatchOut) {
      w.i32(mn.latches()[latch_cursor++].init_value);
    }
  }
  w.u64(mn.latches().size());
  for (const map::MLatch& l : mn.latches()) w.u32(l.input);
  w.u32_vec(mn.outputs());
  w.str_vec(mn.output_names());
}

Result<map::MappedNetlist> deserialize_mapped_netlist(ByteReader& r) {
  using map::MKind;
  return guarded("mapped-netlist artifact",
                 [&]() -> Result<map::MappedNetlist> {
    map::MappedNetlist mn(r.str());
    const std::uint64_t num_cells = r.u64();
    std::size_t num_latch_cells = 0;
    for (std::uint64_t i = 0; i < num_cells && r.ok(); ++i) {
      const auto kind = static_cast<MKind>(r.u8());
      const std::string name = r.str();
      if (!r.ok()) break;
      switch (kind) {
        case MKind::kConst0:
        case MKind::kInput:
        case MKind::kParam:
          mn.add_source(kind, name);
          break;
        case MKind::kLatchOut: {
          const int init = r.i32();
          mn.add_latch_source(name, init);
          ++num_latch_cells;
          break;
        }
        case MKind::kLut:
        case MKind::kTlut:
        case MKind::kTcon: {
          std::vector<map::CellId> data = r.u32_vec();
          std::vector<map::CellId> params = r.u32_vec();
          logic::TruthTable tt = read_tt(r);
          if (!r.ok()) break;
          mn.add_cell(kind, name, std::move(data), std::move(params),
                      std::move(tt));
          break;
        }
        default:
          return Status::corrupt_artifact(
              "mapped-netlist artifact: bad cell kind");
      }
    }
    const std::uint64_t num_latches = r.u64();
    if (!r.ok() || num_latches != num_latch_cells) {
      return r.ok() ? Status::corrupt_artifact(
                          "mapped-netlist artifact: latch count mismatch")
                    : r.status("mapped-netlist artifact");
    }
    for (std::uint64_t i = 0; i < num_latches; ++i) {
      const map::CellId input = r.u32();
      if (!r.ok()) break;
      mn.set_latch_input(i, input);
    }
    const std::vector<map::CellId> outputs = r.u32_vec();
    const std::vector<std::string> names = r.str_vec();
    if (!r.ok() || outputs.size() != names.size()) {
      return r.ok() ? Status::corrupt_artifact(
                          "mapped-netlist artifact: output name mismatch")
                    : r.status("mapped-netlist artifact");
    }
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      mn.add_output(outputs[i], names[i]);
    }
    mn.check();
    return mn;
  });
}

void serialize_map_result(const map::MapResult& result, ByteWriter& w) {
  serialize_mapped_netlist(result.netlist, w);
  w.str(result.stats.mapper);
  w.u64(result.stats.num_luts);
  w.u64(result.stats.num_tluts);
  w.u64(result.stats.num_tcons);
  w.u64(result.stats.lut_area);
  w.i32(result.stats.depth);
  // runtime_seconds intentionally not serialized (volatile).
}

Result<map::MapResult> deserialize_map_result(ByteReader& r) {
  FPGADBG_ASSIGN_OR_RETURN(map::MappedNetlist mn,
                           deserialize_mapped_netlist(r));
  map::MapResult result;
  result.netlist = std::move(mn);
  result.stats.mapper = r.str();
  result.stats.num_luts = r.u64();
  result.stats.num_tluts = r.u64();
  result.stats.num_tcons = r.u64();
  result.stats.lut_area = r.u64();
  result.stats.depth = r.i32();
  FPGADBG_RETURN_IF_ERROR(r.status("map artifact"));
  return result;
}

// --- packing ---------------------------------------------------------------

void serialize_packing(const pnr::Packing& packing, ByteWriter& w) {
  w.u64(packing.clusters.size());
  for (const pnr::Cluster& c : packing.clusters) w.u32_vec(c.bles);
  write_int_vec(w, packing.cluster_of);
}

Result<pnr::Packing> deserialize_packing(ByteReader& r) {
  pnr::Packing packing;
  const std::uint64_t n = r.u64();
  if (n > r.remaining() / 8 + 1) {
    return Status::corrupt_artifact("packing artifact: bad cluster count");
  }
  packing.clusters.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    packing.clusters.push_back(pnr::Cluster{r.u32_vec()});
  }
  packing.cluster_of = read_int_vec(r);
  FPGADBG_RETURN_IF_ERROR(r.status("packing artifact"));
  return packing;
}

// --- placement -------------------------------------------------------------

void serialize_placement(const pnr::Placement& placement, ByteWriter& w) {
  write_pos_vec(w, placement.cluster_pos);
  // unordered_map iteration order is not deterministic; sort by cell id so
  // equal placements always serialize to equal bytes (hash stability).
  std::vector<std::pair<map::CellId, std::pair<int, int>>> io(
      placement.io_of_cell.begin(), placement.io_of_cell.end());
  std::sort(io.begin(), io.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(io.size());
  for (const auto& [cell, pos] : io) {
    w.u32(cell);
    w.u32(static_cast<std::uint32_t>(pos.first));
    w.u32(static_cast<std::uint32_t>(pos.second));
  }
  write_pos_vec(w, placement.io_of_output);
  write_pos_vec(w, placement.bram_of_lane);
  w.f64(placement.total_hpwl);
}

Result<pnr::Placement> deserialize_placement(ByteReader& r) {
  pnr::Placement placement;
  placement.cluster_pos = read_pos_vec(r);
  const std::uint64_t n = r.u64();
  if (n > r.remaining() / 12 + 1) {
    return Status::corrupt_artifact("placement artifact: bad io count");
  }
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const map::CellId cell = r.u32();
    const int x = static_cast<int>(r.u32());
    const int y = static_cast<int>(r.u32());
    placement.io_of_cell.emplace(cell, std::make_pair(x, y));
  }
  placement.io_of_output = read_pos_vec(r);
  placement.bram_of_lane = read_pos_vec(r);
  placement.total_hpwl = r.f64();
  FPGADBG_RETURN_IF_ERROR(r.status("placement artifact"));
  return placement;
}

// --- routing ---------------------------------------------------------------

void serialize_route_result(const pnr::RouteResult& routing, ByteWriter& w) {
  w.boolean(routing.success);
  w.i32(routing.iterations);
  w.u64(routing.routes.size());
  for (const auto& route : routing.routes) w.u32_vec(route);
  w.u64(routing.wire_nodes_used);
  w.u64(routing.total_wirelength);
  // runtime_seconds intentionally not serialized (volatile).
}

Result<pnr::RouteResult> deserialize_route_result(ByteReader& r) {
  pnr::RouteResult routing;
  routing.success = r.boolean();
  routing.iterations = r.i32();
  const std::uint64_t n = r.u64();
  if (n > r.remaining() / 8 + 1) {
    return Status::corrupt_artifact("route artifact: bad net count");
  }
  routing.routes.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    routing.routes.push_back(r.u32_vec());
  }
  routing.wire_nodes_used = r.u64();
  routing.total_wirelength = r.u64();
  FPGADBG_RETURN_IF_ERROR(r.status("route artifact"));
  return routing;
}

// --- pconf -----------------------------------------------------------------

void serialize_pconf(const PconfArtifact& artifact, ByteWriter& w) {
  const bitstream::PConf& pconf = artifact.pconf;
  w.u64(pconf.total_bits());
  w.str_vec(pconf.param_names());

  const BitVec& constants = pconf.constants().bits();
  w.u64(constants.size());
  std::vector<std::uint64_t> words(constants.word_count());
  for (std::size_t i = 0; i < words.size(); ++i) words[i] = constants.word(i);
  w.u64_vec(words);

  // The whole BDD arena, children before parents: replaying insert_node in
  // index order on a fresh manager reproduces identical refs.
  const logic::BddManager& bdd = pconf.bdd();
  w.i32(bdd.num_vars());
  w.u64(bdd.size());
  for (logic::BddRef ref = 2; ref < bdd.size(); ++ref) {
    w.u32(bdd.node_var(ref));
    w.u32(bdd.node_low(ref));
    w.u32(bdd.node_high(ref));
  }

  const bitstream::FunctionView functions = pconf.functions();
  w.u64(functions.count);
  for (std::size_t i = 0; i < functions.count; ++i) {
    w.u64(functions.bits[i]);
    w.u32(functions.refs[i]);
  }

  w.u64(artifact.stats.lut_cells);
  w.u64(artifact.stats.tlut_cells);
  w.u64(artifact.stats.constant_switch_bits);
  w.u64(artifact.stats.parameterized_switch_bits);
  w.u64(artifact.stats.parameterized_lut_bits);
}

Result<PconfArtifact> deserialize_pconf(ByteReader& r) {
  return guarded("pconf artifact", [&]() -> Result<PconfArtifact> {
    const std::uint64_t total_bits = r.u64();
    std::vector<std::string> param_names = r.str_vec();
    const std::uint64_t constant_bits = r.u64();
    std::vector<std::uint64_t> words = r.u64_vec();
    if (!r.ok() || constant_bits != total_bits ||
        words.size() != (constant_bits + 63) / 64) {
      return r.ok() ? Status::corrupt_artifact(
                          "pconf artifact: constant plane size mismatch")
                    : r.status("pconf artifact");
    }

    bitstream::PConf pconf(total_bits, std::move(param_names));
    BitVec& constants = pconf.constants().bits();
    for (std::size_t i = 0; i < words.size(); ++i) {
      constants.set_word(i, words[i]);
    }

    logic::BddManager& bdd = pconf.bdd();
    bdd.ensure_vars(r.i32());
    const std::uint64_t num_nodes = r.u64();
    for (std::uint64_t ref = 2; ref < num_nodes && r.ok(); ++ref) {
      const std::uint32_t var = r.u32();
      const logic::BddRef low = r.u32();
      const logic::BddRef high = r.u32();
      if (low >= ref || high >= ref) {
        return Status::corrupt_artifact(
            "pconf artifact: BDD node references a later node");
      }
      if (bdd.insert_node(var, low, high) != ref) {
        return Status::corrupt_artifact(
            "pconf artifact: BDD arena is not canonical");
      }
    }

    const std::uint64_t num_functions = r.u64();
    if (num_functions > r.remaining() / 12 + 1) {
      return Status::corrupt_artifact("pconf artifact: bad function count");
    }
    for (std::uint64_t i = 0; i < num_functions && r.ok(); ++i) {
      const std::uint64_t bit = r.u64();
      const logic::BddRef ref = r.u32();
      if (bit >= total_bits || ref >= bdd.size() || bdd.is_const(ref)) {
        return Status::corrupt_artifact(
            "pconf artifact: function bit or ref out of range");
      }
      pconf.set_function(bit, ref);
    }

    PconfArtifact artifact{std::move(pconf), {}};
    artifact.stats.lut_cells = r.u64();
    artifact.stats.tlut_cells = r.u64();
    artifact.stats.constant_switch_bits = r.u64();
    artifact.stats.parameterized_switch_bits = r.u64();
    artifact.stats.parameterized_lut_bits = r.u64();
    FPGADBG_RETURN_IF_ERROR(r.status("pconf artifact"));
    return artifact;
  });
}

// --- options hashing --------------------------------------------------------

std::uint64_t hash_instrument_options(const debug::InstrumentOptions& o) {
  ByteWriter w;
  w.u64(o.trace_width);
  w.boolean(o.observe_logic);
  w.boolean(o.observe_latch_outputs);
  w.u64(o.max_observed);
  w.str_vec(o.observe_list);
  w.i32(o.mux_radix);
  w.i32(o.replication);
  return w.content_hash();
}

std::uint64_t hash_map_options(int lut_size, int max_param_leaves) {
  ByteWriter w;
  w.i32(lut_size);
  w.i32(max_param_leaves);
  return w.content_hash();
}

std::uint64_t hash_arch_params(const arch::ArchParams& a) {
  ByteWriter w;
  w.i32(a.lut_size);
  w.i32(a.cluster_size);
  w.i32(a.cluster_inputs);
  w.i32(a.channel_width);
  w.i32(a.bram_column_period);
  w.i32(a.bram_kbits);
  return w.content_hash();
}

std::uint64_t hash_device_options(const pnr::CompileOptions& o) {
  ByteWriter w;
  w.u64(hash_arch_params(o.arch));
  w.f64(o.device_slack);
  return w.content_hash();
}

std::uint64_t hash_timing_options(const pnr::TimingOptions& t) {
  ByteWriter w;
  w.boolean(t.timing_driven);
  w.f64(t.place_tradeoff);
  w.f64(t.crit_exp);
  w.f64(t.route_crit_weight);
  w.f64(t.delays.lut_ns);
  w.f64(t.delays.pin_ns);
  w.f64(t.delays.segment_ns);
  w.f64(t.delays.fanout_ns);
  w.f64(t.delays.tile_ns);
  return w.content_hash();
}

std::uint64_t hash_place_options(const pnr::CompileOptions& o) {
  ByteWriter w;
  w.u64(hash_device_options(o));
  w.u64(o.place.seed);
  w.f64(o.place.moves_per_cell);
  w.f64(o.place.initial_accept);
  w.f64(o.place.exit_temperature);
  w.boolean(o.place.analytic_seed);
  w.i32(o.place.seed_iterations);
  w.u64(hash_timing_options(o.timing));
  return w.content_hash();
}

std::uint64_t hash_route_options(const pnr::CompileOptions& o) {
  ByteWriter w;
  w.u64(hash_device_options(o));
  w.i32(o.route.max_iterations);
  w.f64(o.route.pres_fac_init);
  w.f64(o.route.pres_fac_mult);
  w.f64(o.route.hist_fac);
  w.f64(o.route.astar_fac);
  w.i32(o.route.bb_margin);
  w.boolean(o.route.incremental);
  w.u64(hash_timing_options(o.timing));
  // route_threads is deliberately NOT hashed: the router guarantees
  // bit-identical results for every thread count, so a cached route artifact
  // stays valid when only the parallelism changes.
  return w.content_hash();
}

}  // namespace fpgadbg::flow
