// Typed, serializable pipeline artifacts.
//
// Each offline stage produces one artifact; this header defines its byte
// format (via flow::ByteWriter / ByteReader), its content hash (FNV-1a over
// exactly the serialized bytes), and the hashes of the option structs that
// parameterize each stage.  Deserializers never throw: malformed bytes come
// back as StatusCode::kCorruptArtifact.
//
// Design rule: artifacts carry only deterministic content.  Wall-clock
// fields (MapStats::runtime_seconds, RouteResult::runtime_seconds) are NOT
// serialized — timings belong to the pipeline's stage reports and the
// telemetry registry, and volatile bytes would make content hashes unstable
// across otherwise-identical runs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "arch/rr_graph.h"
#include "bitstream/builder.h"
#include "bitstream/pconf.h"
#include "debug/signal_param.h"
#include "flow/cache.h"
#include "flow/serialize.h"
#include "map/cover.h"
#include "netlist/netlist.h"
#include "pnr/flow.h"
#include "support/status.h"

namespace fpgadbg::flow {

// --- netlist (pipeline input + instrument artifact payload) ----------------
void serialize_netlist(const netlist::Netlist& nl, ByteWriter& w);
support::Result<netlist::Netlist> deserialize_netlist(ByteReader& r);
/// Content hash of a user netlist (the pipeline's root input hash).
std::uint64_t netlist_content_hash(const netlist::Netlist& nl);

// --- instrument ------------------------------------------------------------
void serialize_instrumented(const debug::Instrumented& inst, ByteWriter& w);
support::Result<debug::Instrumented> deserialize_instrumented(ByteReader& r);

// --- tcon-map ---------------------------------------------------------------
void serialize_mapped_netlist(const map::MappedNetlist& mn, ByteWriter& w);
support::Result<map::MappedNetlist> deserialize_mapped_netlist(ByteReader& r);
void serialize_map_result(const map::MapResult& result, ByteWriter& w);
support::Result<map::MapResult> deserialize_map_result(ByteReader& r);

// --- pack -------------------------------------------------------------------
void serialize_packing(const pnr::Packing& packing, ByteWriter& w);
support::Result<pnr::Packing> deserialize_packing(ByteReader& r);

// --- place ------------------------------------------------------------------
void serialize_placement(const pnr::Placement& placement, ByteWriter& w);
support::Result<pnr::Placement> deserialize_placement(ByteReader& r);

// --- route ------------------------------------------------------------------
void serialize_route_result(const pnr::RouteResult& routing, ByteWriter& w);
support::Result<pnr::RouteResult> deserialize_route_result(ByteReader& r);

// --- pconf-build ------------------------------------------------------------
/// The generalized bitstream plus its build statistics (one artifact: the
/// stats are as much a product of the stage as the PConf itself).
struct PconfArtifact {
  bitstream::PConf pconf;
  bitstream::PconfBuildStats stats;
};
void serialize_pconf(const PconfArtifact& artifact, ByteWriter& w);
support::Result<PconfArtifact> deserialize_pconf(ByteReader& r);

// --- zero-copy blob encodings (artifacts_blob.cpp) --------------------------
// The three heavyweight artifacts — the CSR rr-graph, the mapped netlist and
// the PConf/BDD store — can be encoded as pointer-free blobs (flow/blob.h)
// that load by mmap + validate + borrow instead of a field-by-field parse.
// The load_* functions sniff the payload: a blob image of the current format
// version takes the zero-copy path, a stream image falls back to the
// ByteReader deserializers above, and a blob of a DIFFERENT format version
// comes back as nullopt (treat as a cache miss and rebuild — old caches are
// rebuilt, never misparsed).
inline constexpr std::uint32_t kBlobKindRRGraph = 1;
inline constexpr std::uint32_t kBlobKindMapResult = 2;
inline constexpr std::uint32_t kBlobKindPconf = 3;

/// True when `bytes` begins with the blob magic (any format version).
bool looks_like_blob(std::string_view bytes);

std::string encode_rr_graph_blob(const arch::RRGraph& rr);
/// Zero-copy load: the returned graph borrows its arrays from hit.backing.
/// nullopt = different blob format version (rebuild).
support::Result<std::optional<std::unique_ptr<arch::RRGraph>>>
load_rr_graph_blob(const arch::Device& device, const CacheHit& hit);

std::string encode_map_result_blob(const map::MapResult& result);
/// Blob or stream payload (sniffed); nullopt = unrecognized format version.
support::Result<std::optional<map::MapResult>> load_map_result(
    const CacheHit& hit);

std::string encode_pconf_blob(const PconfArtifact& artifact);
/// Blob or stream payload (sniffed).  On the blob path the PConf's BDD
/// arena and function table borrow from hit.backing (zero-copy); nullopt =
/// unrecognized format version.
support::Result<std::optional<PconfArtifact>> load_pconf(const CacheHit& hit);

// --- options hashing --------------------------------------------------------
// Stage cache keys are (stage, input-hash, options-hash); these produce the
// options-hash component.  Every field that influences the stage's output
// must be folded in.
std::uint64_t hash_instrument_options(const debug::InstrumentOptions& o);
std::uint64_t hash_map_options(int lut_size, int max_param_leaves);
std::uint64_t hash_arch_params(const arch::ArchParams& a);
/// Device geometry inputs shared by place/route/pconf-build (arch + slack).
std::uint64_t hash_device_options(const pnr::CompileOptions& o);
/// Timing knobs + delay model.  Folded into the place, route AND pconf-build
/// options hashes: editing any --delay-* / --timing-driven knob invalidates
/// exactly those three stages (pconf-build chains CONTENT hashes, so it is
/// included there explicitly — a knob change whose place/route outputs happen
/// to be byte-identical must still miss deterministically, not depend on how
/// the optimizers reacted).
std::uint64_t hash_timing_options(const pnr::TimingOptions& t);
std::uint64_t hash_place_options(const pnr::CompileOptions& o);
std::uint64_t hash_route_options(const pnr::CompileOptions& o);

}  // namespace fpgadbg::flow
