// Byte-level serialization and content hashing for pipeline artifacts.
//
// Every stage artifact is serialized into a flat byte buffer through
// ByteWriter; its content hash is FNV-1a over exactly those bytes, so
// "serialize -> hash" and "serialize -> store -> load -> deserialize ->
// serialize -> hash" agree by construction.  ByteReader is fail-soft: any
// out-of-bounds or malformed read flips a sticky error flag instead of
// throwing, and deserializers surface it as StatusCode::kCorruptArtifact —
// a corrupt cache entry must be a reportable condition, not a crash.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace fpgadbg::flow {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a(const void* data, std::size_t size,
                           std::uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view bytes,
                           std::uint64_t seed = kFnvOffset) {
  return fnv1a(bytes.data(), bytes.size(), seed);
}

/// Order-sensitive hash mixing for chaining stage keys:
/// combine(stage-name-hash, input-hash, options-hash).
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t h = a;
  for (int i = 0; i < 8; ++i) {
    h ^= (b >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

/// Little-endian append-only byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view s) {
    u64(s.size());
    buffer_.append(s.data(), s.size());
  }

  void u32_vec(const std::vector<std::uint32_t>& v) {
    u64(v.size());
    if (!v.empty()) raw(v.data(), v.size() * sizeof(std::uint32_t));
  }
  void u64_vec(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    if (!v.empty()) raw(v.data(), v.size() * sizeof(std::uint64_t));
  }
  void str_vec(const std::vector<std::string>& v) {
    u64(v.size());
    for (const std::string& s : v) str(s);
  }

  const std::string& bytes() const { return buffer_; }
  std::string take() { return std::move(buffer_); }
  std::uint64_t content_hash() const { return fnv1a(buffer_); }

 private:
  void raw(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  std::string buffer_;
};

/// Bounds-checked reader over a byte buffer.  After any failed read, ok()
/// is false and every subsequent read returns a zero value; deserializers
/// check ok() once at the end (or at allocation-size boundaries).
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  /// The sticky failure as a Status (corrupt artifact).
  support::Status status(const std::string& what) const {
    if (ok_) return support::Status();
    return support::Status::corrupt_artifact(what + ": truncated or malformed");
  }

  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint64_t n = u64();
    if (!check(n)) return {};
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  std::vector<std::uint32_t> u32_vec() {
    const std::uint64_t n = u64();
    if (!check(n * sizeof(std::uint32_t))) return {};
    std::vector<std::uint32_t> v(n);
    if (n) std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(std::uint32_t));
    pos_ += n * sizeof(std::uint32_t);
    return v;
  }
  std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t n = u64();
    if (!check(n * sizeof(std::uint64_t))) return {};
    std::vector<std::uint64_t> v(n);
    if (n) std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(std::uint64_t));
    pos_ += n * sizeof(std::uint64_t);
    return v;
  }
  std::vector<std::string> str_vec() {
    const std::uint64_t n = u64();
    // Each element costs at least the 8-byte length prefix; reject sizes the
    // buffer cannot possibly hold before allocating.
    if (!check(n * 8)) return {};
    std::vector<std::string> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n && ok_; ++i) v.push_back(str());
    return v;
  }

 private:
  bool check(std::uint64_t need) {
    if (!ok_ || need > remaining()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  void raw(void* out, std::size_t size) {
    if (!check(size)) return;
    std::memcpy(out, bytes_.data() + pos_, size);
    pos_ += size;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fpgadbg::flow
