// Content-addressed cache backend: payloads named by their own FNV-1a hash
// under <root>/cas/, keyed index files under <root>/index/<stage>/.  See
// flow/cache.h for the sharing and locking contract.
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "flow/cache.h"
#include "flow/cache_internal.h"
#include "flow/serialize.h"
#include "support/mmap.h"
#include "support/telemetry.h"

namespace fpgadbg::flow {

namespace {

namespace fs = std::filesystem;

using support::MmapRegion;
using support::Result;
using support::Status;
using namespace cache_internal;

/// RAII flock over <root>/.lock.  Writers take it shared (any number of
/// processes may publish concurrently — publication is rename-atomic);
/// the GC sweep takes it exclusively so it never unlinks a payload another
/// process is between publishing and indexing.  Readers take no lock at
/// all: an mmap taken before an unlink stays valid, and index/payload
/// files are immutable once published.
class RootLock {
 public:
  RootLock(const std::string& root, bool exclusive) {
    fd_ = ::open((root + "/.lock").c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                 0644);
    if (fd_ >= 0) ::flock(fd_, exclusive ? LOCK_EX : LOCK_SH);
  }
  ~RootLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  RootLock(const RootLock&) = delete;
  RootLock& operator=(const RootLock&) = delete;

 private:
  int fd_ = -1;
};

class CasCacheStore final : public CacheStore {
 public:
  explicit CasCacheStore(std::string root) : root_(std::move(root)) {}

  std::string entry_path(const std::string& stage,
                         std::uint64_t key) const override {
    return root_ + "/index/" + stage + "/" + hex64(key);
  }

  std::string cas_path(std::uint64_t content_hash) const {
    return root_ + "/cas/" + hex64(content_hash);
  }

  Result<std::optional<CacheHit>> load(const std::string& stage,
                                       std::uint64_t key) const override {
    auto& m = telemetry::metrics();
    const std::string index = entry_path(stage, key);

    char raw[kEntryHeaderSize];
    {
      std::ifstream in(index, std::ios::binary);
      if (!in) {
        m.counter("flow.cache.misses").add();
        return std::optional<CacheHit>();
      }
      in.read(raw, sizeof raw);
      if (in.gcount() != static_cast<std::streamsize>(sizeof raw)) {
        return Status::corrupt_artifact(
            "cache index " + index +
            ": shorter than the fixed header (truncated)");
      }
    }
    if (std::memcmp(raw, kIndexMagic, 8) != 0) {
      return Status::corrupt_artifact("cache index " + index +
                                      ": bad magic (not an index file)");
    }
    const EntryHeader h = decode_header(raw);
    if (h.stage_hash != fnv1a(stage) || h.key != key) {
      return Status::corrupt_artifact("cache index " + index +
                                      ": mislabeled header");
    }

    const std::string payload_path = cas_path(h.payload_hash);
    struct stat st;
    if (::stat(payload_path.c_str(), &st) != 0) {
      // Dangling index (payload swept by GC): a miss, so the stage rebuilds
      // and re-publishes.
      m.counter("flow.cache.misses").add();
      return std::optional<CacheHit>();
    }
    // Size check before the digest pass: truncation fails fast.
    if (static_cast<std::uint64_t>(st.st_size) != h.payload_size) {
      return Status::corrupt_artifact(
          "cache object " + payload_path +
          ": size does not match its index (truncated)");
    }

    FPGADBG_ASSIGN_OR_RETURN(std::shared_ptr<MmapRegion> region,
                             MmapRegion::map_file(payload_path));
    const std::string_view payload = region->view();
    if (fnv1a(payload) != h.payload_hash) {
      return Status::corrupt_artifact(
          "cache object " + payload_path +
          ": content hash mismatch (object is damaged); delete it to "
          "recompute");
    }

    touch_atime(payload_path);
    m.counter("flow.cache.hits").add();
    m.counter("flow.cache.bytes_read").add(payload.size());
    m.counter("flow.cache.mmap_hits").add();
    m.counter("flow.cache.bytes_mapped").add(payload.size());
    CacheHit hit;
    hit.payload = payload;
    hit.content_hash = h.payload_hash;
    hit.mapped = true;
    hit.backing = std::move(region);
    return std::optional<CacheHit>(std::move(hit));
  }

  Status store(const std::string& stage, std::uint64_t key,
               std::uint64_t content_hash,
               std::string_view bytes) const override {
    const std::string index = entry_path(stage, key);
    const std::string payload_path = cas_path(content_hash);
    std::error_code ec;
    fs::create_directories(root_ + "/cas", ec);
    if (!ec) fs::create_directories(fs::path(index).parent_path(), ec);
    if (ec) {
      return Status::io_error("cannot create cache directories under " +
                              root_ + ": " + ec.message());
    }

    RootLock lock(root_, /*exclusive=*/false);

    // Payload first, then the index naming it: a reader can race the pair
    // and see index-without-payload only for entries GC removed, never for
    // entries mid-publish.  Content-named files are immutable, so when the
    // object already exists (same bytes by construction) the write is
    // skipped entirely — that is the dedup.
    struct stat st;
    const bool have_payload =
        ::stat(payload_path.c_str(), &st) == 0 &&
        static_cast<std::uint64_t>(st.st_size) == bytes.size();
    if (!have_payload &&
        !publish_file(payload_path, nullptr, 0, bytes.data(), bytes.size())) {
      return Status::io_error("cannot publish cache object " + payload_path +
                              ": " + std::strerror(errno));
    }
    char header[kEntryHeaderSize];
    encode_header(header, kIndexMagic,
                  EntryHeader{fnv1a(stage), key, content_hash, bytes.size()});
    if (!publish_file(index, header, sizeof header, nullptr, 0)) {
      return Status::io_error("cannot publish cache index " + index + ": " +
                              std::strerror(errno));
    }
    auto& m = telemetry::metrics();
    m.counter("flow.cache.stores").add();
    m.counter("flow.cache.bytes_written").add(have_payload ? 0 : bytes.size());
    return Status();
  }

  Result<std::vector<CacheEntryInfo>> entries() const override {
    std::vector<CacheEntryInfo> all;
    std::error_code ec;
    for (fs::directory_iterator it(root_ + "/cas", ec);
         !ec && it != fs::directory_iterator(); ++it) {
      if (!it->is_regular_file(ec)) continue;
      CacheEntryInfo e;
      e.path = it->path().string();
      e.bytes = it->file_size(ec);
      e.atime_ns = read_atime_ns(e.path);
      all.push_back(std::move(e));
    }
    // Attach each index file to the object it names, so sweeping an object
    // also drops the keys that point at it.
    std::vector<std::pair<std::string, std::size_t>> by_name;
    by_name.reserve(all.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      by_name.emplace_back(fs::path(all[i].path).filename().string(), i);
    }
    std::sort(by_name.begin(), by_name.end());
    for_each_index([&](const std::string& path, const EntryHeader& h) {
      const std::string name = hex64(h.payload_hash);
      const auto it = std::lower_bound(
          by_name.begin(), by_name.end(), name,
          [](const auto& a, const std::string& b) { return a.first < b; });
      if (it != by_name.end() && it->first == name) {
        all[it->second].index_paths.push_back(path);
      }
    });
    return all;
  }

  Result<GcStats> gc(std::uint64_t max_bytes) const override {
    RootLock lock(root_, /*exclusive=*/true);
    FPGADBG_ASSIGN_OR_RETURN(std::vector<CacheEntryInfo> all, entries());
    GcStats stats = gc_sweep(std::move(all), max_bytes);
    // Dangling indexes (object already swept, or a crashed writer) are
    // noise for future loads: drop them while we hold the exclusive lock.
    for_each_index([&](const std::string& path, const EntryHeader& h) {
      struct stat st;
      if (::stat(cas_path(h.payload_hash).c_str(), &st) != 0) {
        ::unlink(path.c_str());
      }
    });
    return stats;
  }

  std::string describe() const override { return "cas:" + root_; }

 private:
  template <typename Fn>
  void for_each_index(Fn&& fn) const {
    std::error_code ec;
    for (fs::directory_iterator stage_it(root_ + "/index", ec);
         !ec && stage_it != fs::directory_iterator(); ++stage_it) {
      if (!stage_it->is_directory(ec)) continue;
      std::error_code ec2;
      for (fs::directory_iterator it(stage_it->path(), ec2);
           !ec2 && it != fs::directory_iterator(); ++it) {
        if (!it->is_regular_file(ec2)) continue;
        char raw[kEntryHeaderSize];
        std::ifstream in(it->path(), std::ios::binary);
        if (!in) continue;
        in.read(raw, sizeof raw);
        if (in.gcount() != static_cast<std::streamsize>(sizeof raw)) continue;
        if (std::memcmp(raw, kIndexMagic, 8) != 0) continue;
        fn(it->path().string(), decode_header(raw));
      }
    }
  }

  std::string root_;
};

}  // namespace

std::unique_ptr<CacheStore> make_cas_cache_store(std::string root) {
  return std::make_unique<CasCacheStore>(std::move(root));
}

}  // namespace fpgadbg::flow
