#include "flow/pipeline.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <optional>
#include <utility>

#include "bitstream/builder.h"
#include "flow/artifacts.h"
#include "map/mappers.h"
#include "pnr/nets.h"
#include "pnr/pack.h"
#include "pnr/place.h"
#include "pnr/route.h"
#include "support/log.h"
#include "support/stopwatch.h"
#include "support/telemetry.h"

namespace fpgadbg::flow {

namespace {

using support::Result;
using support::Status;

std::uint64_t stage_key(const char* name, std::uint64_t input_hash,
                        std::uint64_t options_hash) {
  return hash_combine(hash_combine(fnv1a(std::string_view(name)), input_hash),
                      options_hash);
}

/// Converts a legacy CAD-library exception escaping a stage into a Status.
Status status_from_exception(const char* stage) {
  return support::status_from_current_exception().with_stage(stage);
}

/// Book-keeping shared by every run_stage instantiation.
struct StageContext {
  const ArtifactCache& cache;
  telemetry::MetricsRegistry& metrics;
  std::vector<StageReport>& reports;
  std::size_t& executed;
  std::size_t& from_cache;
};

/// Runs one cached stage: cache lookup, load on hit, execute + encode +
/// store on miss.  `exec` computes the artifact (may throw the legacy
/// exceptions), `encode(value)` produces its serialized bytes, and
/// `load(hit)` is its inverse over a CacheHit — returning nullopt when the
/// payload is a well-formed artifact of an unrecognized (newer/older blob)
/// format version, which re-executes the stage instead of misparsing.  The
/// hit's content hash was already verified against the payload by the
/// store, so it is reused for downstream key chaining without re-hashing.
/// On success *content_hash_out carries the artifact's content hash.
template <typename T, typename Exec, typename Encode, typename Load>
Result<T> run_stage(StageContext& ctx, const char* name, std::uint64_t key,
                    std::uint64_t* content_hash_out, Exec exec, Encode encode,
                    Load load) {
  Stopwatch timer;
  auto finish = [&](bool hit, std::uint64_t hash, std::size_t bytes) {
    ctx.reports.push_back(StageReport{name, hit, key, hash, timer.elapsed_seconds(),
                                      bytes});
    if (hit) {
      ++ctx.from_cache;
    } else {
      ++ctx.executed;
    }
    *content_hash_out = hash;
  };

  auto loaded = ctx.cache.load(name, key);
  if (!loaded.ok()) {
    return Status(loaded.status()).with_stage(name);
  }
  if (loaded.value().has_value()) {
    const CacheHit& hit = *loaded.value();
    Result<std::optional<T>> value = load(hit);
    if (!value.ok()) {
      return Status(value.status()).with_stage(name, hit.content_hash);
    }
    if (value.value().has_value()) {
      finish(/*hit=*/true, hit.content_hash, hit.payload.size());
      return *std::move(value.value());
    }
    // Unrecognized format version: fall through and re-execute.
  }

  std::optional<T> value;
  try {
    value.emplace(exec());
  } catch (...) {
    return status_from_exception(name);
  }
  ctx.metrics.counter("flow.stage.executions").add();

  const std::string bytes = encode(*value);
  const std::uint64_t hash = fnv1a(bytes);
  Status stored = ctx.cache.store(name, key, hash, bytes);
  if (!stored.ok()) return stored.with_stage(name, hash);
  finish(/*hit=*/false, hash, bytes.size());
  return *std::move(value);
}

/// Adapts a legacy `ser(value, writer)` serializer into an encode callback.
template <typename Ser>
auto stream_encode(Ser ser) {
  return [ser](const auto& value) {
    ByteWriter w;
    ser(value, w);
    return w.take();
  };
}

/// Adapts a legacy `deser(reader)` deserializer into a load callback (the
/// stream format has no version fan-out, so it never returns nullopt).
template <typename T, typename Deser>
auto stream_load(Deser deser) {
  return [deser](const CacheHit& hit) -> Result<std::optional<T>> {
    ByteReader reader(hit.payload);
    FPGADBG_ASSIGN_OR_RETURN(T value, deser(reader));
    return std::optional<T>(std::move(value));
  };
}

}  // namespace

const char* stage_name(StageId id) {
  switch (id) {
    case StageId::kInstrument: return "instrument";
    case StageId::kTconMap: return "tcon-map";
    case StageId::kPack: return "pack";
    case StageId::kPlace: return "place";
    case StageId::kRoute: return "route";
    case StageId::kPconfBuild: return "pconf-build";
  }
  return "unknown";
}

Pipeline::Pipeline(debug::OfflineOptions options)
    : options_(std::move(options)),
      cache_(ArtifactCache::for_options(options_.cache_backend,
                                        options_.cache_dir,
                                        options_.cache_shared)) {}

Result<PipelineResult> Pipeline::run(const netlist::Netlist& user) const {
  telemetry::MetricsRegistry& m = telemetry::metrics();
  telemetry::TraceScope offline_span("debug.offline");
  PipelineResult result;
  StageContext ctx{cache_, m, result.stages, result.stages_executed,
                   result.stages_from_cache};
  debug::OfflineResult& offline = result.offline;
  Stopwatch total;
  Stopwatch stage;

  // Live progress: one unit per stage, the current stage name in both the
  // /statusz marker and a /progressz note, and running cache hit/miss
  // telemetry so a scrape shows whether the run is recomputing or replaying.
  telemetry::ProgressReporter progress("flow.pipeline");
  progress.set_total(options_.run_pnr ? 6 : 2);
  // Join key against the trace/journal/logs: the offline span's trace id
  // (0 when neither --trace nor the span ring is active).
  if (const auto tctx = telemetry::current_trace_context(); tctx.active()) {
    progress.field("trace_id", static_cast<double>(tctx.trace_id));
  }
  std::uint64_t stages_done = 0;
  auto begin_stage = [&](const char* name) {
    telemetry::set_current_stage(name);
    progress.note("stage", name);
  };
  auto end_stage = [&] {
    progress.advance(++stages_done);
    progress.field("cache_hits", static_cast<double>(result.stages_from_cache));
    progress.field("cache_misses", static_cast<double>(result.stages_executed));
  };
  // Clear the /statusz marker on every exit path, including error returns.
  struct StageMarkerReset {
    ~StageMarkerReset() { telemetry::set_current_stage(""); }
  } stage_marker_reset;

  const std::uint64_t user_hash = netlist_content_hash(user);

  // --- instrument ----------------------------------------------------------
  std::uint64_t instrument_hash = 0;
  begin_stage("instrument");
  {
    telemetry::TraceScope span("offline.instrument");
    const std::uint64_t key =
        stage_key("instrument", user_hash,
                  hash_instrument_options(options_.instrument));
    FPGADBG_ASSIGN_OR_RETURN(
        offline.instrumented,
        run_stage<debug::Instrumented>(
            ctx, "instrument", key, &instrument_hash,
            [&] { return parameterize_signals(user, options_.instrument); },
            stream_encode(serialize_instrumented),
            stream_load<debug::Instrumented>(deserialize_instrumented)));
  }
  end_stage();
  offline.instrument_seconds =
      m.histogram("offline.instrument_seconds").observe(stage.elapsed_seconds());
  m.counter("instrument.observable_signals")
      .add(offline.instrumented.num_observable());
  m.counter("instrument.lanes").add(offline.instrumented.lane_signals.size());
  m.counter("instrument.parameters")
      .add(offline.instrumented.netlist.params().size());
  LOG_INFO << "offline: instrumented " << offline.instrumented.num_observable()
           << " signals over " << offline.instrumented.lane_signals.size()
           << " lanes, " << offline.instrumented.netlist.params().size()
           << " parameters";

  // --- tcon-map ------------------------------------------------------------
  std::uint64_t map_hash = 0;
  stage.restart();
  begin_stage("tcon-map");
  {
    telemetry::TraceScope span("offline.map");
    const std::uint64_t key =
        stage_key("tcon-map", instrument_hash,
                  hash_map_options(options_.lut_size, options_.max_param_leaves));
    FPGADBG_ASSIGN_OR_RETURN(
        offline.mapping,
        run_stage<map::MapResult>(
            ctx, "tcon-map", key, &map_hash,
            [&] {
              return map::tcon_map(offline.instrumented.netlist,
                                   options_.lut_size,
                                   options_.max_param_leaves);
            },
            [&](const map::MapResult& v) {
              return blob_encoding() ? encode_map_result_blob(v)
                                     : stream_encode(serialize_map_result)(v);
            },
            [](const CacheHit& hit) { return load_map_result(hit); }));
  }
  end_stage();
  offline.map_seconds =
      m.histogram("offline.map_seconds").observe(stage.elapsed_seconds());
  LOG_INFO << "offline: mapped to " << offline.mapping.stats.num_luts
           << " LUTs + " << offline.mapping.stats.num_tluts << " TLUTs + "
           << offline.mapping.stats.num_tcons << " TCONs, depth "
           << offline.mapping.stats.depth;

  if (options_.run_pnr) {
    const pnr::CompileOptions& copt = options_.compile;
    auto design = std::make_unique<pnr::CompiledDesign>();
    design->netlist = offline.mapping.netlist;
    const map::MappedNetlist& net = design->netlist;

    std::optional<telemetry::TraceScope> pnr_span;
    pnr_span.emplace("offline.pnr");
    Stopwatch pnr_timer;

    // --- pack --------------------------------------------------------------
    std::uint64_t pack_hash = 0;
    stage.restart();
    begin_stage("pack");
    {
      telemetry::TraceScope span("pnr.pack");
      const std::uint64_t key =
          stage_key("pack", map_hash, hash_arch_params(copt.arch));
      FPGADBG_ASSIGN_OR_RETURN(
          design->packing,
          run_stage<pnr::Packing>(
              ctx, "pack", key, &pack_hash,
              [&] { return pnr::pack(net, copt.arch); },
              stream_encode(serialize_packing),
              stream_load<pnr::Packing>(deserialize_packing)));
    }
    end_stage();
    design->report.pack_seconds =
        m.histogram("pnr.pack_seconds").observe(stage.elapsed_seconds());

    // Derived physical state: a deterministic, cheap function of the packing
    // size and the architecture options.  The rr-graph is the one big piece
    // — it is cached as a zero-copy blob keyed on (arch params, device
    // size), OUTSIDE the six counted stages (it is derived state, not a
    // pipeline stage, and its key ignores the user design entirely so every
    // same-sized compile shares one entry).
    try {
      const std::size_t min_clbs = std::max<std::size_t>(
          4, static_cast<std::size_t>(std::ceil(
                 static_cast<double>(design->packing.num_clusters()) *
                 copt.device_slack)));
      design->device = std::make_unique<arch::Device>(copt.arch, min_clbs);
      if (cache_.enabled() && blob_encoding()) {
        const std::uint64_t rr_key = stage_key(
            "rr-graph", hash_arch_params(copt.arch),
            static_cast<std::uint64_t>(min_clbs));
        auto loaded = cache_.load("rr-graph", rr_key);
        if (!loaded.ok()) return Status(loaded.status()).with_stage("pack");
        if (loaded.value().has_value()) {
          auto rr = load_rr_graph_blob(*design->device, *loaded.value());
          if (!rr.ok()) return Status(rr.status()).with_stage("pack");
          if (rr.value().has_value()) design->rr = std::move(*rr.value());
        }
        if (!design->rr) {
          design->rr = std::make_unique<arch::RRGraph>(*design->device);
          const std::string bytes = encode_rr_graph_blob(*design->rr);
          Status stored =
              cache_.store("rr-graph", rr_key, fnv1a(bytes), bytes);
          if (!stored.ok()) return stored.with_stage("pack");
        }
      } else {
        design->rr = std::make_unique<arch::RRGraph>(*design->device);
      }
      design->frames =
          std::make_unique<arch::FrameGeometry>(*design->device, *design->rr);
      LOG_INFO << "compile: " << design->device->describe() << ", "
               << design->packing.num_clusters() << " clusters";
      design->nets =
          pnr::extract_nets(net, offline.instrumented.trace_outputs);
    } catch (...) {
      return status_from_exception("pack");
    }

    // place/route consume the device and net extraction too; both derive
    // from (instrument, tcon-map, pack) artifacts plus options, so chaining
    // those three content hashes covers every input.
    const std::uint64_t physical_hash =
        hash_combine(hash_combine(instrument_hash, map_hash), pack_hash);

    // --- place -------------------------------------------------------------
    std::uint64_t place_hash = 0;
    stage.restart();
    begin_stage("place");
    {
      telemetry::TraceScope span("pnr.place");
      const std::uint64_t key =
          stage_key("place", physical_hash, hash_place_options(copt));
      FPGADBG_ASSIGN_OR_RETURN(
          design->placement,
          run_stage<pnr::Placement>(
              ctx, "place", key, &place_hash,
              [&] {
                return pnr::place(net, design->packing, design->nets,
                                  *design->device, copt.place, copt.timing);
              },
              stream_encode(serialize_placement),
              stream_load<pnr::Placement>(deserialize_placement)));
    }
    end_stage();
    design->report.place_seconds =
        m.histogram("pnr.place_seconds").observe(stage.elapsed_seconds());

    // --- route -------------------------------------------------------------
    std::uint64_t route_hash = 0;
    stage.restart();
    begin_stage("route");
    {
      telemetry::TraceScope span("pnr.route");
      const std::uint64_t key =
          stage_key("route", hash_combine(physical_hash, place_hash),
                    hash_route_options(copt));
      FPGADBG_ASSIGN_OR_RETURN(
          design->routing,
          run_stage<pnr::RouteResult>(
              ctx, "route", key, &route_hash,
              [&] {
                return pnr::route(*design->rr, net, design->packing,
                                  design->nets, design->placement, copt.route,
                                  copt.timing);
              },
              stream_encode(serialize_route_result),
              stream_load<pnr::RouteResult>(deserialize_route_result)));
    }
    end_stage();
    design->report.route_seconds =
        m.histogram("pnr.route_seconds").observe(stage.elapsed_seconds());

    design->report.device = design->device->describe();
    design->report.clbs_used = design->packing.num_clusters();
    design->report.luts = net.lut_area();
    design->report.tcons = net.count(map::MKind::kTcon);
    design->report.nets = design->nets.nets.size();
    design->report.route_success = design->routing.success;
    design->report.route_iterations = design->routing.iterations;
    design->report.wire_nodes_used = design->routing.wire_nodes_used;
    design->report.total_wirelength = design->routing.total_wirelength;
    // Routed-fidelity STA runs on cache hits too: the route artifact stores
    // routes, not timing, and the analysis is far cheaper than a replay.
    try {
      pnr::finalize_timing(*design, copt.timing);
    } catch (...) {
      return status_from_exception("route");
    }
    design->report.total_seconds = pnr_timer.elapsed_seconds();
    offline.compiled = std::move(design);

    pnr_span.reset();
    offline.pnr_seconds =
        m.histogram("offline.pnr_seconds").observe(pnr_timer.elapsed_seconds());

    // --- pconf-build -------------------------------------------------------
    std::uint64_t pconf_hash = 0;
    stage.restart();
    begin_stage("pconf-build");
    {
      telemetry::TraceScope span("offline.bitstream");
      // Timing options join the key even though place/route CONTENT hashes
      // are chained: a timing-knob edit must invalidate this stage
      // deterministically, not only when the optimizers' outputs changed.
      const std::uint64_t key = stage_key(
          "pconf-build",
          hash_combine(hash_combine(physical_hash, place_hash), route_hash),
          hash_combine(hash_device_options(copt),
                       hash_timing_options(copt.timing)));
      FPGADBG_ASSIGN_OR_RETURN(
          PconfArtifact artifact,
          run_stage<PconfArtifact>(
              ctx, "pconf-build", key, &pconf_hash,
              [&] {
                bitstream::PconfBuildStats stats;
                bitstream::PConf pconf =
                    bitstream::build_pconf(*offline.compiled, &stats);
                return PconfArtifact{std::move(pconf), stats};
              },
              [&](const PconfArtifact& v) {
                return blob_encoding() ? encode_pconf_blob(v)
                                       : stream_encode(serialize_pconf)(v);
              },
              [](const CacheHit& hit) { return load_pconf(hit); }));
      offline.pconf =
          std::make_unique<bitstream::PConf>(std::move(artifact.pconf));
      offline.pconf_stats = artifact.stats;
      // Index for the incremental SCG belongs to the offline budget; it is
      // derived state, so it is rebuilt on cache hits too.
      offline.pconf->prepare_incremental();
    }
    end_stage();
    offline.bitstream_seconds =
        m.histogram("offline.bitstream_seconds").observe(stage.elapsed_seconds());
    LOG_INFO << "offline: generalized bitstream has "
             << offline.pconf->num_parameterized_bits()
             << " parameterized bits across "
             << offline.pconf->parameterized_frames().size() << " frames";
  }

  offline.total_seconds =
      m.histogram("offline.total_seconds").observe(total.elapsed_seconds());
  return result;
}

}  // namespace fpgadbg::flow
