// Staged compile pipeline with typed artifacts and incremental caching.
//
// The offline "generic" stage of the paper's Fig. 4(b), decomposed into six
// named stages:
//
//   instrument -> tcon-map -> pack -> place -> route -> pconf-build
//
// Each stage consumes the previous stage's typed artifact and produces its
// own (see flow/artifacts.h).  A stage's cache key is
//
//   hash_combine(fnv1a(stage-name), input-hash, options-hash)
//
// where input-hash chains the content hashes of every upstream artifact the
// stage reads, and options-hash folds in exactly the option fields that can
// change the stage's output.  With a cache directory configured, re-running
// the pipeline re-executes only the stages downstream of whatever changed:
// editing place options leaves instrument/tcon-map/pack as cache hits and
// re-runs place -> route -> pconf-build.
//
// Derived physical state (arch::Device, RRGraph, FrameGeometry, the net
// extraction) is deliberately NOT an artifact: it is a cheap deterministic
// function of the packing size and the architecture options, so the pipeline
// rebuilds it after pack instead of serializing device models.
//
// Error contract: run() never throws.  Stage failures — including legacy
// fpgadbg::Error exceptions from the CAD libraries and corrupt cache
// entries — come back as a support::Status tagged with the stage name.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "debug/flow.h"
#include "flow/cache.h"
#include "support/status.h"

namespace fpgadbg::flow {

enum class StageId {
  kInstrument,
  kTconMap,
  kPack,
  kPlace,
  kRoute,
  kPconfBuild,
};

/// Stable stage name ("instrument", "tcon-map", ...): cache subdirectory,
/// Status stage tag and report label.
const char* stage_name(StageId id);

struct StageReport {
  std::string name;
  bool from_cache = false;        ///< artifact loaded instead of computed
  std::uint64_t key = 0;          ///< cache key (stage, input, options)
  std::uint64_t content_hash = 0; ///< FNV-1a of the serialized artifact
  double seconds = 0.0;           ///< wall clock (execute or load+verify)
  std::size_t artifact_bytes = 0;
};

struct PipelineResult {
  debug::OfflineResult offline;
  std::vector<StageReport> stages;
  std::size_t stages_executed = 0;
  std::size_t stages_from_cache = 0;
};

class Pipeline {
 public:
  explicit Pipeline(debug::OfflineOptions options);

  /// Runs the offline flow on a user circuit.  Cache behavior is governed by
  /// options.cache_dir (empty = every stage executes).
  support::Result<PipelineResult> run(const netlist::Netlist& user) const;

 private:
  /// Hot artifacts are blob-encoded unless explicitly set to "stream".
  bool blob_encoding() const {
    return options_.artifact_encoding != "stream";
  }

  debug::OfflineOptions options_;
  ArtifactCache cache_;
};

}  // namespace fpgadbg::flow
