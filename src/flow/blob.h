// Zero-copy blob format for hot pipeline artifacts.
//
// A blob is a pointer-free, little-endian byte image designed to be mmap'd
// and used in place: a fixed 64-byte header, a section table of
// relative-offset typed spans, then the section payloads, each 64-byte
// aligned.  The writer emits deterministic bytes (same input -> same bytes,
// no pointers, no uninitialized padding), so blobs can be content-hashed
// and deduplicated; the reader validates the whole image (magic, version,
// kind, size, digest, section bounds and alignment) before handing out
// typed views directly over the mapping — no copies, no allocation
// proportional to artifact size.
//
// Layout:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     8  magic "FDBGBLB1"
//        8     4  format_version (u32) — readers of a different version
//                 treat the blob as a cache miss and rebuild, never parse
//       12     4  kind (u32) — artifact discriminator (rr-graph, ...)
//       16     8  payload_digest (u64) — FNV-1a over bytes [32, total)
//       24     8  total_size (u64) — must equal the mapped size exactly
//       32     4  section_count (u32)
//       36    28  reserved, must be zero
//       64   24n  section table: {offset u64, size_bytes u64, tag u32,
//                 elem_size u32} per section, then zero padding to the
//                 next 64-byte boundary
//        …        section payloads, each starting on a 64-byte boundary,
//                 gaps zero-filled
//
// All offsets are relative to the blob base, so the image is
// position-independent.  The digest covers everything after the size
// field, so any bit flip in the table or payloads is caught by one linear
// FNV pass; flips inside the first 32 bytes are caught by the explicit
// magic/version/kind/size checks.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "support/status.h"

namespace fpgadbg::flow {

inline constexpr std::uint32_t kBlobFormatVersion = 1;
inline constexpr std::size_t kBlobAlign = 64;

/// Typed read-only view into a mapped blob section.  Non-owning: the
/// mapping (or aligned buffer) backing it must outlive the span.
template <typename T>
struct BlobSpan {
  const T* ptr = nullptr;
  std::size_t count = 0;

  const T* begin() const { return ptr; }
  const T* end() const { return ptr + count; }
  const T& operator[](std::size_t i) const { return ptr[i]; }
  std::size_t size() const { return count; }
  bool empty() const { return count == 0; }
};

/// Deterministic blob assembler.  Append sections in a fixed order, then
/// finish() to get the full image.  Element types must be trivially
/// copyable and contain no uninitialized padding (pad fields must be
/// explicit and zeroed) or the output bytes would not be deterministic.
class BlobWriter {
 public:
  explicit BlobWriter(std::uint32_t kind) : kind_(kind) {}

  template <typename T>
  void section(std::uint32_t tag, const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    add(tag, static_cast<std::uint32_t>(sizeof(T)), data,
        count * sizeof(T));
  }
  template <typename T>
  void section(std::uint32_t tag, const std::vector<T>& v) {
    section(tag, v.data(), v.size());
  }
  /// Opaque byte-stream section (elem_size 1), e.g. ByteWriter metadata.
  void bytes_section(std::uint32_t tag, std::string_view bytes) {
    add(tag, 1, bytes.data(), bytes.size());
  }

  /// Assembles header + table + payloads into one deterministic image.
  std::string finish() const;

 private:
  struct Pending {
    std::uint32_t tag;
    std::uint32_t elem_size;
    std::string payload;
  };

  void add(std::uint32_t tag, std::uint32_t elem_size, const void* data,
           std::size_t bytes) {
    Pending p;
    p.tag = tag;
    p.elem_size = elem_size;
    p.payload.assign(static_cast<const char*>(data), bytes);
    sections_.push_back(std::move(p));
  }

  std::uint32_t kind_;
  std::vector<Pending> sections_;
};

/// Validating reader over a mapped (or 64-byte-aligned in-memory) blob.
class BlobReader {
 public:
  /// Validates `bytes` as a blob of `kind`.  Returns:
  ///   - a reader on success,
  ///   - nullopt when the image is a well-formed blob of a *different*
  ///     format version (callers treat this as a miss and rebuild),
  ///   - kCorruptArtifact for anything else: bad magic, wrong kind, size
  ///     mismatch, digest mismatch, misaligned base, or a section table
  ///     that points outside the image or off alignment.
  static support::Result<std::optional<BlobReader>> open(
      std::string_view bytes, std::uint32_t kind);

  /// Typed span for `tag`.  Fails when the tag is absent, the stored
  /// element size is not sizeof(T), or the section size is not a multiple
  /// of sizeof(T).
  template <typename T>
  support::Result<BlobSpan<T>> span(std::uint32_t tag) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const Section* s = find(tag);
    if (s == nullptr) return missing(tag);
    if (s->elem_size != sizeof(T) || s->size_bytes % sizeof(T) != 0) {
      return type_mismatch(tag, sizeof(T), s->elem_size);
    }
    BlobSpan<T> v;
    v.ptr = reinterpret_cast<const T*>(base_ + s->offset);
    v.count = s->size_bytes / sizeof(T);
    return v;
  }

  /// Raw byte-stream section (stored with elem_size 1).
  support::Result<std::string_view> bytes(std::uint32_t tag) const;

  bool has(std::uint32_t tag) const { return find(tag) != nullptr; }

 private:
  struct Section {
    std::uint64_t offset;
    std::uint64_t size_bytes;
    std::uint32_t tag;
    std::uint32_t elem_size;
  };

  const Section* find(std::uint32_t tag) const {
    for (const Section& s : sections_) {
      if (s.tag == tag) return &s;
    }
    return nullptr;
  }
  static support::Status missing(std::uint32_t tag);
  static support::Status type_mismatch(std::uint32_t tag, std::size_t want,
                                       std::uint32_t got);

  const char* base_ = nullptr;
  std::vector<Section> sections_;
};

/// 64-byte-aligned owning copy of a byte buffer, for feeding BlobReader
/// from sources that do not guarantee alignment (std::string payloads,
/// network bytes).  The mmap path never needs this — page alignment
/// already satisfies the blob requirement.
class AlignedBlobBuffer {
 public:
  explicit AlignedBlobBuffer(std::string_view bytes)
      : raw_(new char[bytes.size() + kBlobAlign]), size_(bytes.size()) {
    auto addr = reinterpret_cast<std::uintptr_t>(raw_.get());
    const std::uintptr_t aligned =
        (addr + (kBlobAlign - 1)) & ~static_cast<std::uintptr_t>(kBlobAlign - 1);
    base_ = raw_.get() + (aligned - addr);
    if (!bytes.empty()) std::memcpy(base_, bytes.data(), bytes.size());
  }

  std::string_view view() const { return {base_, size_}; }

 private:
  std::unique_ptr<char[]> raw_;
  char* base_;
  std::size_t size_;
};

}  // namespace fpgadbg::flow
