#include "flow/cache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "flow/cache_internal.h"
#include "flow/serialize.h"
#include "support/mmap.h"
#include "support/telemetry.h"

namespace fpgadbg::flow {

namespace {

namespace fs = std::filesystem;

using support::MmapRegion;
using support::Result;
using support::Status;
using namespace cache_internal;

}  // namespace

namespace cache_internal {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

void touch_atime(const std::string& path) {
  struct timespec times[2];
  times[0].tv_sec = 0;
  times[0].tv_nsec = UTIME_NOW;   // atime := now
  times[1].tv_sec = 0;
  times[1].tv_nsec = UTIME_OMIT;  // mtime unchanged
  ::utimensat(AT_FDCWD, path.c_str(), times, 0);
}

std::int64_t read_atime_ns(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<std::int64_t>(st.st_atim.tv_sec) * 1'000'000'000 +
         st.st_atim.tv_nsec;
}

bool publish_file(const std::string& path, const char* header,
                  std::size_t header_size, const void* payload,
                  std::size_t payload_size) {
  // Process-unique temp name: concurrent writers of the same entry never
  // stomp each other's partial file, and rename() makes the publish atomic.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  bool ok = true;
  auto write_all = [&](const char* p, std::size_t n) {
    while (n > 0) {
      const ssize_t w = ::write(fd, p, n);
      if (w <= 0) return false;
      p += w;
      n -= static_cast<std::size_t>(w);
    }
    return true;
  };
  if (header_size > 0) ok = write_all(header, header_size);
  if (ok && payload_size > 0) {
    ok = write_all(static_cast<const char*>(payload), payload_size);
  }
  if (::close(fd) != 0) ok = false;
  if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) ::unlink(tmp.c_str());
  return ok;
}

}  // namespace cache_internal

// --- shared GC sweep --------------------------------------------------------

GcStats gc_sweep(std::vector<CacheEntryInfo> all, std::uint64_t max_bytes) {
  GcStats stats;
  stats.scanned_entries = all.size();
  std::uint64_t total = 0;
  for (const CacheEntryInfo& e : all) total += e.bytes;
  stats.scanned_bytes = total;

  // Least-recently-used first; path tie-break keeps the order deterministic
  // when atimes collide (coarse filesystem timestamps).
  std::sort(all.begin(), all.end(),
            [](const CacheEntryInfo& a, const CacheEntryInfo& b) {
              if (a.atime_ns != b.atime_ns) return a.atime_ns < b.atime_ns;
              return a.path < b.path;
            });
  for (const CacheEntryInfo& e : all) {
    if (total <= max_bytes) break;
    if (::unlink(e.path.c_str()) != 0 && errno != ENOENT) continue;
    for (const std::string& idx : e.index_paths) ::unlink(idx.c_str());
    total -= e.bytes;
    stats.removed_bytes += e.bytes;
    ++stats.removed_entries;
  }
  return stats;
}

Result<GcStats> CacheStore::gc(std::uint64_t max_bytes) const {
  FPGADBG_ASSIGN_OR_RETURN(std::vector<CacheEntryInfo> all, entries());
  return gc_sweep(std::move(all), max_bytes);
}

// --- directory backend ------------------------------------------------------

namespace {

class DirCacheStore final : public CacheStore {
 public:
  explicit DirCacheStore(std::string dir) : dir_(std::move(dir)) {}

  std::string entry_path(const std::string& stage,
                         std::uint64_t key) const override {
    return dir_ + "/" + stage + "/" + hex64(key);
  }

  Result<std::optional<CacheHit>> load(const std::string& stage,
                                       std::uint64_t key) const override {
    auto& m = telemetry::metrics();
    const std::string path = entry_path(stage, key);

    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno != ENOENT) {
        return Status::io_error("cannot stat cache entry " + path + ": " +
                                std::strerror(errno));
      }
      m.counter("flow.cache.misses").add();
      return std::optional<CacheHit>();
    }

    // Fail fast on truncation BEFORE touching any payload byte: the fixed
    // header carries the payload size, so a short file is detected from
    // the first 64 bytes, not discovered at the end of a full digest pass.
    if (static_cast<std::size_t>(st.st_size) < kEntryHeaderSize) {
      return Status::corrupt_artifact(
          "cache entry " + path +
          ": shorter than the fixed header (truncated)");
    }

    FPGADBG_ASSIGN_OR_RETURN(std::shared_ptr<MmapRegion> region,
                             MmapRegion::map_file(path));
    const std::string_view file = region->view();
    if (std::memcmp(file.data(), kLegacyMagic, 8) == 0) {
      // Pre-mmap entry format: rebuilt, never misparsed.
      m.counter("flow.cache.misses").add();
      return std::optional<CacheHit>();
    }
    if (std::memcmp(file.data(), kDirMagic, 8) != 0) {
      return Status::corrupt_artifact("cache entry " + path +
                                      ": bad magic (not an artifact file)");
    }
    const EntryHeader h = decode_header(file.data());
    if (h.stage_hash != fnv1a(stage) || h.key != key) {
      return Status::corrupt_artifact("cache entry " + path +
                                      ": mislabeled header");
    }
    if (h.payload_size != file.size() - kEntryHeaderSize) {
      return Status::corrupt_artifact(
          "cache entry " + path +
          ": payload size does not match the file (truncated)");
    }
    const std::string_view payload = file.substr(kEntryHeaderSize);
    if (fnv1a(payload) != h.payload_hash) {
      return Status::corrupt_artifact(
          "cache entry " + path +
          ": payload hash mismatch (file is damaged); delete it to "
          "recompute");
    }

    touch_atime(path);
    m.counter("flow.cache.hits").add();
    m.counter("flow.cache.bytes_read").add(payload.size());
    m.counter("flow.cache.mmap_hits").add();
    m.counter("flow.cache.bytes_mapped").add(payload.size());
    CacheHit hit;
    hit.payload = payload;
    hit.content_hash = h.payload_hash;
    hit.mapped = true;
    hit.backing = std::move(region);
    return std::optional<CacheHit>(std::move(hit));
  }

  Status store(const std::string& stage, std::uint64_t key,
               std::uint64_t content_hash,
               std::string_view bytes) const override {
    const std::string path = entry_path(stage, key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec) {
      return Status::io_error("cannot create cache directory for " + path +
                              ": " + ec.message());
    }
    char header[kEntryHeaderSize];
    encode_header(header, kDirMagic,
                  EntryHeader{fnv1a(stage), key, content_hash, bytes.size()});
    if (!publish_file(path, header, sizeof header, bytes.data(),
                      bytes.size())) {
      return Status::io_error("cannot publish cache entry " + path + ": " +
                              std::strerror(errno));
    }
    auto& m = telemetry::metrics();
    m.counter("flow.cache.stores").add();
    m.counter("flow.cache.bytes_written").add(bytes.size());
    return Status();
  }

  Result<std::vector<CacheEntryInfo>> entries() const override {
    std::vector<CacheEntryInfo> all;
    std::error_code ec;
    for (fs::directory_iterator stage_it(dir_, ec);
         !ec && stage_it != fs::directory_iterator(); ++stage_it) {
      if (!stage_it->is_directory(ec)) continue;
      std::error_code ec2;
      for (fs::directory_iterator it(stage_it->path(), ec2);
           !ec2 && it != fs::directory_iterator(); ++it) {
        if (!it->is_regular_file(ec2)) continue;
        CacheEntryInfo e;
        e.path = it->path().string();
        e.bytes = it->file_size(ec2);
        e.atime_ns = read_atime_ns(e.path);
        all.push_back(std::move(e));
      }
    }
    return all;
  }

  std::string describe() const override { return "dir:" + dir_; }

 private:
  std::string dir_;
};

}  // namespace

std::unique_ptr<CacheStore> make_dir_cache_store(std::string dir) {
  return std::make_unique<DirCacheStore>(std::move(dir));
}

// --- facade -----------------------------------------------------------------

ArtifactCache::ArtifactCache(std::string cache_dir)
    : location_(std::move(cache_dir)) {
  if (!location_.empty()) store_ = make_dir_cache_store(location_);
}

ArtifactCache ArtifactCache::for_options(const std::string& backend,
                                         const std::string& cache_dir,
                                         const std::string& shared_root) {
  const bool cas = backend == "cas" || (backend.empty() && !shared_root.empty());
  ArtifactCache cache;
  if (cas) {
    cache.location_ = shared_root.empty() ? cache_dir : shared_root;
    if (!cache.location_.empty()) {
      cache.store_ = make_cas_cache_store(cache.location_);
    }
  } else {
    cache.location_ = cache_dir;
    if (!cache.location_.empty()) {
      cache.store_ = make_dir_cache_store(cache.location_);
    }
  }
  return cache;
}

Result<std::optional<CacheHit>> ArtifactCache::load(const std::string& stage,
                                                    std::uint64_t key) const {
  if (!enabled()) return std::optional<CacheHit>();
  return store_->load(stage, key);
}

Status ArtifactCache::store(const std::string& stage, std::uint64_t key,
                            std::uint64_t content_hash,
                            std::string_view bytes) const {
  if (!enabled()) return Status();
  return store_->store(stage, key, content_hash, bytes);
}

std::string ArtifactCache::entry_path(const std::string& stage,
                                      std::uint64_t key) const {
  if (!enabled()) return {};
  return store_->entry_path(stage, key);
}

}  // namespace fpgadbg::flow
