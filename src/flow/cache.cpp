#include "flow/cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "flow/serialize.h"
#include "support/telemetry.h"

namespace fpgadbg::flow {

namespace {

namespace fs = std::filesystem;

using support::Result;
using support::Status;

constexpr char kMagic[8] = {'F', 'D', 'B', 'G', 'A', 'R', 'T', '1'};

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

}  // namespace

ArtifactCache::ArtifactCache(std::string cache_dir)
    : dir_(std::move(cache_dir)) {}

std::string ArtifactCache::entry_path(const std::string& stage,
                                      std::uint64_t key) const {
  return dir_ + "/" + stage + "/" + hex64(key);
}

Result<std::optional<std::string>> ArtifactCache::load(
    const std::string& stage, std::uint64_t key) const {
  if (!enabled()) return std::optional<std::string>();

  auto& m = telemetry::metrics();
  const std::string path = entry_path(stage, key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    m.counter("flow.cache.misses").add();
    return std::optional<std::string>();
  }

  std::ostringstream contents;
  contents << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::io_error("cannot read cache entry " + path);
  }
  const std::string file = contents.str();

  // Header: magic, stage, key, payload hash, payload.
  if (file.size() < sizeof kMagic ||
      file.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0) {
    return Status::corrupt_artifact("cache entry " + path +
                                    ": bad magic (not an artifact file)");
  }
  ByteReader r(std::string_view(file).substr(sizeof kMagic));
  const std::string stored_stage = r.str();
  const std::uint64_t stored_key = r.u64();
  const std::uint64_t stored_hash = r.u64();
  std::string payload = r.str();
  if (!r.ok() || stored_stage != stage || stored_key != key) {
    return Status::corrupt_artifact("cache entry " + path +
                                    ": truncated or mislabeled header");
  }
  if (fnv1a(payload) != stored_hash) {
    return Status::corrupt_artifact(
        "cache entry " + path +
        ": payload hash mismatch (file is damaged); delete it to recompute");
  }

  m.counter("flow.cache.hits").add();
  m.counter("flow.cache.bytes_read").add(payload.size());
  return std::optional<std::string>(std::move(payload));
}

Status ArtifactCache::store(const std::string& stage, std::uint64_t key,
                            std::uint64_t content_hash,
                            const std::string& bytes) const {
  if (!enabled()) return Status();

  const std::string path = entry_path(stage, key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    return Status::io_error("cannot create cache directory for " + path +
                            ": " + ec.message());
  }

  ByteWriter w;
  w.str(stage);
  w.u64(key);
  w.u64(content_hash);
  w.str(bytes);

  // Write-then-rename keeps concurrent readers away from partial files.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::io_error("cannot open " + tmp + " for writing");
    out.write(kMagic, sizeof kMagic);
    out.write(w.bytes().data(),
              static_cast<std::streamsize>(w.bytes().size()));
    if (!out.good()) {
      return Status::io_error("short write to cache entry " + tmp);
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::io_error("cannot move cache entry into place at " + path);
  }

  auto& m = telemetry::metrics();
  m.counter("flow.cache.stores").add();
  m.counter("flow.cache.bytes_written").add(bytes.size());
  return Status();
}

}  // namespace fpgadbg::flow
