// On-disk artifact cache for the staged compile pipeline.
//
// One file per entry at <cache-dir>/<stage>/<key-hex>, where the key is
// hash_combine(stage-name-hash, input-hash, options-hash).  Every entry
// stores the artifact's serialized bytes behind a small header carrying a
// format magic, the stage name, the key and the payload's FNV-1a content
// hash; load() re-hashes the payload and rejects mismatches as
// StatusCode::kCorruptArtifact — a truncated or bit-flipped cache file is a
// reportable error, never silently wrong pipeline output.
//
// A default-constructed (or empty-path) cache is disabled: every load
// misses, every store is a no-op, so pipeline code needs no branches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "support/status.h"

namespace fpgadbg::flow {

class ArtifactCache {
 public:
  /// Disabled cache (all loads miss, stores do nothing).
  ArtifactCache() = default;
  /// Caches under `cache_dir` (created on first store); empty = disabled.
  explicit ArtifactCache(std::string cache_dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Looks up (stage, key).  nullopt = miss (also when disabled); bytes =
  /// hit; a Status means the entry exists but is corrupt or unreadable.
  /// Counts flow.cache.hits / flow.cache.misses and flow.cache.bytes_read.
  support::Result<std::optional<std::string>> load(const std::string& stage,
                                                   std::uint64_t key) const;

  /// Stores serialized artifact bytes whose FNV-1a hash is `content_hash`.
  /// Writes via a temp file + rename so readers never see partial entries.
  /// Counts flow.cache.stores and flow.cache.bytes_written.
  support::Status store(const std::string& stage, std::uint64_t key,
                        std::uint64_t content_hash,
                        const std::string& bytes) const;

  /// Path of the entry file (for tests and error messages).
  std::string entry_path(const std::string& stage, std::uint64_t key) const;

 private:
  std::string dir_;
};

}  // namespace fpgadbg::flow
