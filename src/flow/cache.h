// Pluggable on-disk artifact cache for the staged compile pipeline.
//
// The cache is split into a thin facade (ArtifactCache, what the pipeline
// holds) over a storage interface (CacheStore) with two backends:
//
//  - Directory backend ("dir", the PR 3 layout evolved): one file per entry
//    at <dir>/<stage>/<key-hex>.  Entries carry a fixed 64-byte header
//    (magic FDBGART2, stage hash, key, payload FNV-1a, payload size), so
//    the payload starts on a 64-byte boundary and a load is an mmap +
//    header check + one linear digest pass — never a parse, never a copy.
//  - Content-addressed backend ("cas"): payloads live at
//    <root>/cas/<fnv-hex> named by their own content hash (deduplicated,
//    immutable once published), and small fixed-size index files at
//    <root>/index/<stage>/<key-hex> map stage keys to content hashes.
//    Both are published via temp file + atomic rename, so any number of
//    processes — including over NFS — can share one root: readers never
//    lock, writers take a shared flock only to fence against a concurrent
//    GC sweep (which takes it exclusively).
//
// Integrity contract (both backends): the fixed header is validated FIRST
// — magic, identity, and the stored payload size against the actual file
// size — so a truncated entry fails fast as StatusCode::kCorruptArtifact
// before any payload byte is hashed; then one FNV-1a pass over the mapped
// payload catches bit flips.  A corrupt entry is a reportable error, never
// silently wrong pipeline output.  Legacy FDBGART1 entries (pre-mmap
// stream headers) are detected and treated as misses, so old caches are
// rebuilt, not misparsed.
//
// A default-constructed (or empty-path) cache is disabled: every load
// misses, every store is a no-op, so pipeline code needs no branches.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace fpgadbg::flow {

/// A successful cache load.  `payload` points into `backing` (an mmap
/// region, 64-byte aligned by construction) and stays valid for as long as
/// a copy of `backing` is held — zero-copy consumers (blob artifacts) keep
/// the backing alive inside the deserialized object itself.
struct CacheHit {
  std::string_view payload;
  std::uint64_t content_hash = 0;
  /// True when the payload is served directly from a memory mapping
  /// (counted as flow.cache.mmap_hits / flow.cache.bytes_mapped).
  bool mapped = false;
  std::shared_ptr<const void> backing;
};

/// One stored entry, as seen by the GC sweep.
struct CacheEntryInfo {
  std::string path;                     ///< payload file to delete
  std::vector<std::string> index_paths; ///< CAS: index files naming it
  std::uint64_t bytes = 0;              ///< on-disk size of `path`
  std::int64_t atime_ns = 0;            ///< last access (LRU order)
};

struct GcStats {
  std::size_t scanned_entries = 0;
  std::size_t removed_entries = 0;
  std::uint64_t scanned_bytes = 0;
  std::uint64_t removed_bytes = 0;
};

/// Storage interface behind the cache facade.  Implementations must make
/// store() atomic with respect to concurrent load()s (publish via rename)
/// and must keep load() lock-free.
class CacheStore {
 public:
  virtual ~CacheStore() = default;

  /// nullopt = miss; a hit bumps the entry's atime (LRU bookkeeping).
  virtual support::Result<std::optional<CacheHit>> load(
      const std::string& stage, std::uint64_t key) const = 0;

  /// Publishes serialized artifact bytes whose FNV-1a hash is
  /// `content_hash`.  Idempotent; concurrent stores of the same entry are
  /// safe (last rename wins, both files are identical).
  virtual support::Status store(const std::string& stage, std::uint64_t key,
                                std::uint64_t content_hash,
                                std::string_view bytes) const = 0;

  /// Path of the keyed entry file (dir: the payload; cas: the index).
  /// For tests and error messages.
  virtual std::string entry_path(const std::string& stage,
                                 std::uint64_t key) const = 0;

  /// Every stored entry, for the GC sweep.  Order is unspecified.
  virtual support::Result<std::vector<CacheEntryInfo>> entries() const = 0;

  /// LRU-by-atime sweep: removes oldest-accessed entries until the total
  /// payload size is <= max_bytes.  The CAS backend takes the root lock
  /// exclusively for the duration so it never races a concurrent store.
  virtual support::Result<GcStats> gc(std::uint64_t max_bytes) const;

  /// Human-readable backend description ("dir:<path>" / "cas:<root>").
  virtual std::string describe() const = 0;
};

std::unique_ptr<CacheStore> make_dir_cache_store(std::string dir);
std::unique_ptr<CacheStore> make_cas_cache_store(std::string root);

/// Removes the listed entries in LRU order until the remaining total is
/// <= max_bytes.  Shared sweep used by both backends' gc().
GcStats gc_sweep(std::vector<CacheEntryInfo> all, std::uint64_t max_bytes);

/// Facade the pipeline holds.  Copyable (backends are stateless and
/// shared); disabled when no backend is configured.
class ArtifactCache {
 public:
  /// Disabled cache (all loads miss, stores do nothing).
  ArtifactCache() = default;
  /// Directory backend under `cache_dir`; empty = disabled.
  explicit ArtifactCache(std::string cache_dir);

  /// Resolves the CLI-level knobs: backend "dir" (default) or "cas";
  /// `shared_root` is the CAS root (falls back to `cache_dir` when empty,
  /// and a non-empty shared root implies "cas" when no backend is named).
  static ArtifactCache for_options(const std::string& backend,
                                   const std::string& cache_dir,
                                   const std::string& shared_root);

  bool enabled() const { return store_ != nullptr; }
  const std::string& dir() const { return location_; }
  CacheStore* backend() const { return store_.get(); }

  /// Looks up (stage, key).  nullopt = miss (also when disabled); a Status
  /// means the entry exists but is corrupt or unreadable.  Counts
  /// flow.cache.{hits,misses,bytes_read,mmap_hits,bytes_mapped}.
  support::Result<std::optional<CacheHit>> load(const std::string& stage,
                                                std::uint64_t key) const;

  /// Stores serialized artifact bytes whose FNV-1a hash is `content_hash`.
  /// Counts flow.cache.stores and flow.cache.bytes_written.
  support::Status store(const std::string& stage, std::uint64_t key,
                        std::uint64_t content_hash,
                        std::string_view bytes) const;

  /// Path of the entry file (for tests and error messages).
  std::string entry_path(const std::string& stage, std::uint64_t key) const;

 private:
  std::string location_;
  std::shared_ptr<CacheStore> store_;
};

}  // namespace fpgadbg::flow
