#include "flow/blob.h"

#include <cstdio>

#include "flow/serialize.h"

namespace fpgadbg::flow {

namespace {

using support::Result;
using support::Status;

constexpr char kBlobMagic[8] = {'F', 'D', 'B', 'G', 'B', 'L', 'B', '1'};
constexpr std::size_t kHeaderSize = 64;
constexpr std::size_t kTableEntrySize = 24;

constexpr std::size_t align_up(std::size_t v) {
  return (v + (kBlobAlign - 1)) & ~(kBlobAlign - 1);
}

void put_u32(std::string& out, std::size_t at, std::uint32_t v) {
  std::memcpy(out.data() + at, &v, sizeof v);
}
void put_u64(std::string& out, std::size_t at, std::uint64_t v) {
  std::memcpy(out.data() + at, &v, sizeof v);
}
std::uint32_t get_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint64_t get_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

std::string BlobWriter::finish() const {
  const std::size_t table_bytes = sections_.size() * kTableEntrySize;
  const std::size_t payload_start = align_up(kHeaderSize + table_bytes);

  // Lay out payloads first so the table can carry final offsets.
  std::vector<std::uint64_t> offsets(sections_.size());
  std::size_t cursor = payload_start;
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    cursor = align_up(cursor);
    offsets[i] = cursor;
    cursor += sections_[i].payload.size();
  }
  const std::size_t total = cursor;

  std::string out(total, '\0');
  std::memcpy(out.data(), kBlobMagic, sizeof kBlobMagic);
  put_u32(out, 8, kBlobFormatVersion);
  put_u32(out, 12, kind_);
  put_u64(out, 24, total);
  put_u32(out, 32, static_cast<std::uint32_t>(sections_.size()));

  std::size_t entry = kHeaderSize;
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    put_u64(out, entry, offsets[i]);
    put_u64(out, entry + 8, sections_[i].payload.size());
    put_u32(out, entry + 16, sections_[i].tag);
    put_u32(out, entry + 20, sections_[i].elem_size);
    entry += kTableEntrySize;
  }
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    std::memcpy(out.data() + offsets[i], sections_[i].payload.data(),
                sections_[i].payload.size());
  }

  // Digest everything after the size field; written last so it seals the
  // final image.
  put_u64(out, 16, fnv1a(out.data() + 32, total - 32));
  return out;
}

Result<std::optional<BlobReader>> BlobReader::open(std::string_view bytes,
                                                   std::uint32_t kind) {
  if (bytes.size() < kHeaderSize) {
    return Status::corrupt_artifact(
        "blob: image smaller than the fixed header (truncated)");
  }
  if (reinterpret_cast<std::uintptr_t>(bytes.data()) % kBlobAlign != 0) {
    return Status::corrupt_artifact(
        "blob: base address is not 64-byte aligned; refusing to read "
        "(map the file or copy into an AlignedBlobBuffer)");
  }
  const char* base = bytes.data();
  if (std::memcmp(base, kBlobMagic, sizeof kBlobMagic) != 0) {
    return Status::corrupt_artifact("blob: bad magic (not a blob image)");
  }
  const std::uint32_t version = get_u32(base + 8);
  if (version != kBlobFormatVersion) {
    // A well-formed blob from another format revision: the caller rebuilds.
    return std::optional<BlobReader>();
  }
  const std::uint32_t stored_kind = get_u32(base + 12);
  const std::uint64_t digest = get_u64(base + 16);
  const std::uint64_t total = get_u64(base + 24);
  if (total != bytes.size()) {
    return Status::corrupt_artifact(
        "blob: header size does not match the mapped size (truncated or "
        "over-long image)");
  }
  if (stored_kind != kind) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "blob: kind mismatch (stored %u, expected %u)",
                  stored_kind, kind);
    return Status::corrupt_artifact(buf);
  }
  if (fnv1a(base + 32, total - 32) != digest) {
    return Status::corrupt_artifact(
        "blob: content digest mismatch (image is damaged)");
  }

  const std::uint32_t count = get_u32(base + 32);
  for (std::size_t i = 36; i < kHeaderSize; ++i) {
    if (base[i] != 0) {
      return Status::corrupt_artifact("blob: reserved header bytes not zero");
    }
  }
  if (kHeaderSize + static_cast<std::uint64_t>(count) * kTableEntrySize >
      total) {
    return Status::corrupt_artifact(
        "blob: section table extends past the image");
  }

  BlobReader r;
  r.base_ = base;
  r.sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const char* e = base + kHeaderSize + i * kTableEntrySize;
    Section s;
    s.offset = get_u64(e);
    s.size_bytes = get_u64(e + 8);
    s.tag = get_u32(e + 16);
    s.elem_size = get_u32(e + 20);
    if (s.offset % kBlobAlign != 0) {
      return Status::corrupt_artifact("blob: section payload off alignment");
    }
    if (s.offset > total || s.size_bytes > total - s.offset) {
      return Status::corrupt_artifact(
          "blob: section payload extends past the image");
    }
    if (s.elem_size == 0) {
      return Status::corrupt_artifact("blob: section element size is zero");
    }
    if (r.find(s.tag) != nullptr) {
      return Status::corrupt_artifact("blob: duplicate section tag");
    }
    r.sections_.push_back(s);
  }
  return std::optional<BlobReader>(std::move(r));
}

Result<std::string_view> BlobReader::bytes(std::uint32_t tag) const {
  const Section* s = find(tag);
  if (s == nullptr) return missing(tag);
  if (s->elem_size != 1) return type_mismatch(tag, 1, s->elem_size);
  return std::string_view(base_ + s->offset, s->size_bytes);
}

Status BlobReader::missing(std::uint32_t tag) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "blob: missing section tag %u", tag);
  return Status::corrupt_artifact(buf);
}

Status BlobReader::type_mismatch(std::uint32_t tag, std::size_t want,
                                 std::uint32_t got) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "blob: section tag %u has element size %u, expected %zu",
                tag, got, want);
  return Status::corrupt_artifact(buf);
}

}  // namespace fpgadbg::flow
