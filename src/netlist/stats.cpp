#include "netlist/stats.h"

#include <ostream>

namespace fpgadbg::netlist {

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.model = nl.model_name();
  s.num_inputs = nl.inputs().size();
  s.num_params = nl.params().size();
  s.num_outputs = nl.outputs().size();
  s.num_latches = nl.latches().size();
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    if (nl.kind(id) != NodeKind::kLogic) continue;
    ++s.num_logic;
    s.num_edges += nl.fanins(id).size();
    s.max_fanin = std::max(s.max_fanin, static_cast<int>(nl.fanins(id).size()));
  }
  s.depth = nl.depth();
  return s;
}

std::ostream& operator<<(std::ostream& os, const NetlistStats& s) {
  os << s.model << ": pi=" << s.num_inputs << " param=" << s.num_params
     << " po=" << s.num_outputs << " latch=" << s.num_latches
     << " logic=" << s.num_logic << " edges=" << s.num_edges
     << " depth=" << s.depth << " max_fanin=" << s.max_fanin;
  return os;
}

}  // namespace fpgadbg::netlist
