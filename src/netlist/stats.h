// Netlist statistics (the quantities the paper's tables report).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace fpgadbg::netlist {

struct NetlistStats {
  std::string model;
  std::size_t num_inputs = 0;
  std::size_t num_params = 0;
  std::size_t num_outputs = 0;
  std::size_t num_latches = 0;
  std::size_t num_logic = 0;   ///< combinational node ("gate"/LUT) count
  std::size_t num_edges = 0;   ///< total fanin connections
  int depth = 0;               ///< logic depth (levels)
  int max_fanin = 0;
};

NetlistStats compute_stats(const Netlist& nl);

std::ostream& operator<<(std::ostream& os, const NetlistStats& s);

}  // namespace fpgadbg::netlist
