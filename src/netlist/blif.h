// BLIF (Berkeley Logic Interchange Format) reader and writer.
//
// Supports the subset used by the academic FPGA flows the paper builds on
// (VTR/ABC): .model, .inputs, .outputs, .latch (re/rising-edge, optional
// clock), .names with ON-set covers, .end, line continuation with '\'.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"
#include "support/status.h"

namespace fpgadbg::netlist {

/// Parse a BLIF stream; `filename` is used only for error messages.  The
/// try_ forms report malformed input as StatusCode::kParseError (with file
/// and line) and a missing file as kNotFound instead of throwing; the plain
/// forms keep the legacy throwing contract (ParseError / Error).
support::Result<Netlist> try_read_blif(
    std::istream& in, const std::string& filename = "<stream>");
support::Result<Netlist> try_read_blif_file(const std::string& path);
Netlist read_blif(std::istream& in, const std::string& filename = "<stream>");
Netlist read_blif_file(const std::string& path);

/// Write the netlist; logic node functions are emitted as irredundant SOPs.
/// Parameter inputs are written as regular .inputs (the .par sidecar file
/// carries the parameter annotation, as in the paper's tool flow).
void write_blif(const Netlist& nl, std::ostream& out);
void write_blif_file(const Netlist& nl, const std::string& path);

}  // namespace fpgadbg::netlist
