// .par parameter-annotation sidecar file.
//
// The paper's signal parameterisation step produces "a new .blif file and a
// .par file ... used to give an indication to the mapper for which signals
// the PConf should be applied".  The format here is one parameter name per
// line, '#' comments allowed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "support/status.h"

namespace fpgadbg::netlist {

/// Parameter names of a netlist (the .par content).
std::vector<std::string> param_names(const Netlist& nl);

void write_par(const Netlist& nl, std::ostream& out);
void write_par_file(const Netlist& nl, const std::string& path);

/// Read parameter names and re-annotate matching inputs of `nl` as
/// parameters (moves them from inputs() to params()).  Unknown names throw.
std::vector<std::string> read_par(std::istream& in,
                                  const std::string& filename = "<stream>");

/// Applies a parameter name list to a netlist read from plain BLIF: each
/// named input is re-tagged as NodeKind::kParam.
Netlist apply_params(Netlist nl, const std::vector<std::string>& params);

/// Result forms of read_par / apply_params: unknown or non-input parameter
/// names come back as kParseError / kInvalidArgument instead of throwing.
support::Result<std::vector<std::string>> try_read_par(
    std::istream& in, const std::string& filename = "<stream>");
support::Result<Netlist> try_apply_params(
    Netlist nl, const std::vector<std::string>& params);

}  // namespace fpgadbg::netlist
