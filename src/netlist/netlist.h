// Technology-independent logic network.
//
// A Netlist is a DAG of logic nodes over primary inputs and latch outputs.
// Every combinational node carries a truth table over its fanins; latches
// connect a combinational driver to a sequential source node.  This single
// representation serves the whole flow: synthesis cleans it, the signal
// parameterisation pass instruments it, the mappers cover it with LUTs,
// and the simulator evaluates it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/truth_table.h"

namespace fpgadbg::netlist {

using NodeId = std::uint32_t;
inline constexpr NodeId kNullNode = 0xffffffffu;

enum class NodeKind : std::uint8_t {
  kConst0,      ///< constant false source
  kInput,       ///< primary input
  kParam,       ///< debug parameter input (infrequently changing)
  kLatchOut,    ///< sequential source (Q pin of a latch)
  kLogic,       ///< combinational node with a truth table over its fanins
};

struct Node {
  NodeKind kind = NodeKind::kLogic;
  std::string name;
  std::vector<NodeId> fanins;      // empty unless kind == kLogic
  logic::TruthTable function;      // arity == fanins.size() for kLogic
};

struct Latch {
  NodeId input = kNullNode;   ///< combinational driver (D pin)
  NodeId output = kNullNode;  ///< the kLatchOut node (Q pin)
  int init_value = 0;         ///< 0, 1, or 2 (unknown), 3 (don't care)
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string model_name) : model_name_(std::move(model_name)) {}

  const std::string& model_name() const { return model_name_; }
  void set_model_name(std::string name) { model_name_ = std::move(name); }

  // --- construction -------------------------------------------------------
  NodeId add_input(const std::string& name);
  NodeId add_param(const std::string& name);
  NodeId add_const0(const std::string& name);
  NodeId add_logic(const std::string& name, std::vector<NodeId> fanins,
                   logic::TruthTable function);
  /// Creates the kLatchOut node and registers the latch; `input` may be set
  /// later via set_latch_input when the driver does not exist yet.
  NodeId add_latch(const std::string& q_name, NodeId input, int init_value);
  void set_latch_input(std::size_t latch_index, NodeId input);

  void add_output(NodeId node, const std::string& name);

  /// Replace a node's function/fanins in place (used by optimisation passes).
  void rewrite_logic(NodeId node, std::vector<NodeId> fanins,
                     logic::TruthTable function);

  // --- access -------------------------------------------------------------
  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_.at(id); }
  NodeKind kind(NodeId id) const { return nodes_.at(id).kind; }
  const std::string& name(NodeId id) const { return nodes_.at(id).name; }
  const std::vector<NodeId>& fanins(NodeId id) const {
    return nodes_.at(id).fanins;
  }
  const logic::TruthTable& function(NodeId id) const {
    return nodes_.at(id).function;
  }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& params() const { return params_; }
  const std::vector<Latch>& latches() const { return latches_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  const std::vector<std::string>& output_names() const { return output_names_; }

  std::optional<NodeId> find(const std::string& name) const;

  /// All sequential+combinational sources: const0, inputs, params, latch outs.
  bool is_source(NodeId id) const;

  std::size_t num_logic_nodes() const;

  // --- analysis -----------------------------------------------------------
  /// Logic nodes in topological order (fanins before fanouts).
  std::vector<NodeId> topo_order() const;

  /// Per-node logic level: sources at 0, logic node = 1 + max(fanin levels).
  std::vector<int> levels() const;

  /// Maximum level over outputs and latch inputs (the paper's "logic depth").
  int depth() const;

  /// fanout[id] = nodes (and implicit latch D-pins/outputs) reading id.
  std::vector<std::vector<NodeId>> fanouts() const;

  /// Nodes reachable backwards from outputs and latch inputs.
  std::vector<bool> live_mask() const;

  /// Validates structural invariants; throws fpgadbg::Error on violation.
  void check() const;

 private:
  NodeId add_node(Node node);

  std::string model_name_ = "top";
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> params_;
  std::vector<Latch> latches_;
  std::vector<NodeId> outputs_;
  std::vector<std::string> output_names_;
  std::unordered_map<std::string, NodeId> by_name_;
};

}  // namespace fpgadbg::netlist
