#include "netlist/netlist.h"

#include <algorithm>

#include "support/error.h"

namespace fpgadbg::netlist {

NodeId Netlist::add_node(Node node) {
  FPGADBG_REQUIRE(!node.name.empty(), "node name must not be empty");
  FPGADBG_REQUIRE(!by_name_.contains(node.name),
                  "duplicate node name: " + node.name);
  nodes_.push_back(std::move(node));
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  by_name_.emplace(nodes_.back().name, id);
  return id;
}

NodeId Netlist::add_input(const std::string& name) {
  Node n;
  n.kind = NodeKind::kInput;
  n.name = name;
  const NodeId id = add_node(std::move(n));
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_param(const std::string& name) {
  Node n;
  n.kind = NodeKind::kParam;
  n.name = name;
  const NodeId id = add_node(std::move(n));
  params_.push_back(id);
  return id;
}

NodeId Netlist::add_const0(const std::string& name) {
  Node n;
  n.kind = NodeKind::kConst0;
  n.name = name;
  return add_node(std::move(n));
}

NodeId Netlist::add_logic(const std::string& name, std::vector<NodeId> fanins,
                          logic::TruthTable function) {
  FPGADBG_REQUIRE(
      function.num_vars() == static_cast<int>(fanins.size()),
      "logic node arity mismatch between fanins and truth table: " + name);
  for (NodeId f : fanins) {
    FPGADBG_REQUIRE(f < nodes_.size(), "fanin id out of range for " + name);
  }
  Node n;
  n.kind = NodeKind::kLogic;
  n.name = name;
  n.fanins = std::move(fanins);
  n.function = std::move(function);
  return add_node(std::move(n));
}

NodeId Netlist::add_latch(const std::string& q_name, NodeId input,
                          int init_value) {
  Node n;
  n.kind = NodeKind::kLatchOut;
  n.name = q_name;
  const NodeId q = add_node(std::move(n));
  latches_.push_back(Latch{input, q, init_value});
  return q;
}

void Netlist::set_latch_input(std::size_t latch_index, NodeId input) {
  FPGADBG_REQUIRE(latch_index < latches_.size(), "latch index out of range");
  FPGADBG_REQUIRE(input < nodes_.size(), "latch input id out of range");
  latches_[latch_index].input = input;
}

void Netlist::add_output(NodeId node, const std::string& name) {
  FPGADBG_REQUIRE(node < nodes_.size(), "output node id out of range");
  outputs_.push_back(node);
  output_names_.push_back(name);
}

void Netlist::rewrite_logic(NodeId node, std::vector<NodeId> fanins,
                            logic::TruthTable function) {
  FPGADBG_REQUIRE(node < nodes_.size() &&
                      nodes_[node].kind == NodeKind::kLogic,
                  "rewrite_logic target must be a logic node");
  FPGADBG_REQUIRE(function.num_vars() == static_cast<int>(fanins.size()),
                  "rewrite_logic arity mismatch");
  nodes_[node].fanins = std::move(fanins);
  nodes_[node].function = std::move(function);
}

std::optional<NodeId> Netlist::find(const std::string& name) const {
  if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  return std::nullopt;
}

bool Netlist::is_source(NodeId id) const {
  const NodeKind k = kind(id);
  return k == NodeKind::kConst0 || k == NodeKind::kInput ||
         k == NodeKind::kParam || k == NodeKind::kLatchOut;
}

std::size_t Netlist::num_logic_nodes() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(), [](const Node& n) {
        return n.kind == NodeKind::kLogic;
      }));
}

std::vector<NodeId> Netlist::topo_order() const {
  // Kahn's algorithm over logic nodes only; sources have no prerequisites.
  std::vector<int> pending(nodes_.size(), 0);
  std::vector<std::vector<NodeId>> readers(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.kind != NodeKind::kLogic) continue;
    for (NodeId f : n.fanins) {
      if (nodes_[f].kind == NodeKind::kLogic) {
        ++pending[id];
      }
      readers[f].push_back(id);
    }
  }
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == NodeKind::kLogic && pending[id] == 0) {
      ready.push_back(id);
    }
  }
  std::vector<NodeId> order;
  order.reserve(num_logic_nodes());
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const NodeId id = ready[head];
    order.push_back(id);
    for (NodeId r : readers[id]) {
      if (--pending[r] == 0) ready.push_back(r);
    }
  }
  FPGADBG_ASSERT(order.size() == num_logic_nodes(),
                 "combinational cycle detected in netlist");
  return order;
}

std::vector<int> Netlist::levels() const {
  std::vector<int> level(nodes_.size(), 0);
  for (NodeId id : topo_order()) {
    int max_in = 0;
    for (NodeId f : nodes_[id].fanins) {
      max_in = std::max(max_in, level[f]);
    }
    level[id] = max_in + 1;
  }
  return level;
}

int Netlist::depth() const {
  const std::vector<int> level = levels();
  int d = 0;
  for (NodeId out : outputs_) d = std::max(d, level[out]);
  for (const Latch& l : latches_) {
    if (l.input != kNullNode) d = std::max(d, level[l.input]);
  }
  return d;
}

std::vector<std::vector<NodeId>> Netlist::fanouts() const {
  std::vector<std::vector<NodeId>> out(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId f : nodes_[id].fanins) out[f].push_back(id);
  }
  return out;
}

std::vector<bool> Netlist::live_mask() const {
  std::vector<bool> live(nodes_.size(), false);
  std::vector<NodeId> stack;
  auto mark = [&](NodeId id) {
    if (id != kNullNode && !live[id]) {
      live[id] = true;
      stack.push_back(id);
    }
  };
  for (NodeId out : outputs_) mark(out);
  for (const Latch& l : latches_) mark(l.input);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId f : nodes_[id].fanins) mark(f);
    // A live latch output keeps its driver cone alive.
    if (nodes_[id].kind == NodeKind::kLatchOut) {
      for (const Latch& l : latches_) {
        if (l.output == id) mark(l.input);
      }
    }
  }
  return live;
}

void Netlist::check() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.kind == NodeKind::kLogic) {
      if (n.function.num_vars() != static_cast<int>(n.fanins.size())) {
        throw Error("node " + n.name + ": truth table arity mismatch");
      }
      for (NodeId f : n.fanins) {
        if (f >= nodes_.size()) {
          throw Error("node " + n.name + ": dangling fanin");
        }
      }
    } else if (!n.fanins.empty()) {
      throw Error("source node " + n.name + " must not have fanins");
    }
  }
  for (const Latch& l : latches_) {
    if (l.output >= nodes_.size() ||
        nodes_[l.output].kind != NodeKind::kLatchOut) {
      throw Error("latch output is not a kLatchOut node");
    }
    if (l.input == kNullNode || l.input >= nodes_.size()) {
      throw Error("latch " + nodes_[l.output].name + " has no driver");
    }
  }
  for (NodeId out : outputs_) {
    if (out >= nodes_.size()) throw Error("dangling primary output");
  }
  (void)topo_order();  // asserts acyclicity
}

}  // namespace fpgadbg::netlist
