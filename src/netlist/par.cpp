#include "netlist/par.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "netlist/blif.h"
#include "support/error.h"
#include "support/strings.h"

namespace fpgadbg::netlist {

std::vector<std::string> param_names(const Netlist& nl) {
  std::vector<std::string> names;
  names.reserve(nl.params().size());
  for (NodeId id : nl.params()) names.push_back(nl.name(id));
  return names;
}

void write_par(const Netlist& nl, std::ostream& out) {
  out << "# parameters of model " << nl.model_name() << '\n';
  for (const std::string& name : param_names(nl)) out << name << '\n';
}

void write_par_file(const Netlist& nl, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open .par output file: " + path);
  write_par(nl, out);
}

std::vector<std::string> read_par(std::istream& in,
                                  const std::string& filename) {
  std::vector<std::string> names;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (auto pos = line.find('#'); pos != std::string::npos) line.erase(pos);
    for (const std::string& tok : split_ws(line)) {
      names.push_back(tok);
    }
  }
  (void)filename;
  (void)line_no;
  return names;
}

Netlist apply_params(Netlist nl, const std::vector<std::string>& params) {
  // The Netlist API has no re-tagging operation (names and kinds are fixed at
  // construction), so rebuild the network with the chosen inputs as params.
  Netlist out(nl.model_name());
  std::vector<NodeId> remap(nl.num_nodes(), kNullNode);

  std::vector<bool> is_param_name(nl.num_nodes(), false);
  for (const std::string& p : params) {
    auto id = nl.find(p);
    if (!id) throw Error(".par names unknown signal: " + p);
    if (nl.kind(*id) != NodeKind::kInput && nl.kind(*id) != NodeKind::kParam) {
      throw Error(".par signal is not an input: " + p);
    }
    is_param_name[*id] = true;
  }

  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& n = nl.node(id);
    switch (n.kind) {
      case NodeKind::kInput:
        remap[id] = is_param_name[id] ? out.add_param(n.name)
                                      : out.add_input(n.name);
        break;
      case NodeKind::kParam:
        remap[id] = out.add_param(n.name);
        break;
      case NodeKind::kConst0:
        remap[id] = out.add_const0(n.name);
        break;
      case NodeKind::kLatchOut:
        // added with its latch below
        break;
      case NodeKind::kLogic:
        break;
    }
  }
  for (const Latch& l : nl.latches()) {
    remap[l.output] = out.add_latch(nl.name(l.output), kNullNode, l.init_value);
  }
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    std::vector<NodeId> fanins;
    fanins.reserve(n.fanins.size());
    for (NodeId f : n.fanins) {
      FPGADBG_ASSERT(remap[f] != kNullNode, "apply_params remap gap");
      fanins.push_back(remap[f]);
    }
    remap[id] = out.add_logic(n.name, std::move(fanins), n.function);
  }
  for (std::size_t i = 0; i < nl.latches().size(); ++i) {
    out.set_latch_input(i, remap[nl.latches()[i].input]);
  }
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    out.add_output(remap[nl.outputs()[i]], nl.output_names()[i]);
  }
  out.check();
  return out;
}

support::Result<std::vector<std::string>> try_read_par(
    std::istream& in, const std::string& filename) {
  try {
    return read_par(in, filename);
  } catch (...) {
    support::Status s = support::status_from_current_exception();
    return support::Status::parse_error(filename, 0, s.message());
  }
}

support::Result<Netlist> try_apply_params(
    Netlist nl, const std::vector<std::string>& params) {
  try {
    return apply_params(std::move(nl), params);
  } catch (const Error& e) {
    return support::Status::invalid_argument(e.what());
  }
}

}  // namespace fpgadbg::netlist
