#include "netlist/blif.h"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "logic/sop.h"
#include "support/error.h"
#include "support/strings.h"

namespace fpgadbg::netlist {

namespace {

using support::Result;
using support::Status;

struct RawNames {
  std::vector<std::string> signals;  // fanins..., output
  std::vector<std::pair<std::string, char>> cover;  // (input plane, output bit)
  int line = 0;
};

struct RawLatch {
  std::string input;
  std::string output;
  int init = 2;
  int line = 0;
};

/// Reads logical lines: strips comments, joins '\' continuations.
class LineReader {
 public:
  LineReader(std::istream& in, std::string filename)
      : in_(in), filename_(std::move(filename)) {}

  bool next(std::string* out, int* line_no) {
    std::string logical;
    bool have = false;
    std::string phys;
    while (std::getline(in_, phys)) {
      ++line_;
      if (!have) *line_no = line_;
      // Strip comment.
      if (auto pos = phys.find('#'); pos != std::string::npos) {
        phys.erase(pos);
      }
      bool continued = false;
      std::string_view sv = trim(phys);
      if (!sv.empty() && sv.back() == '\\') {
        continued = true;
        sv.remove_suffix(1);
      }
      if (!sv.empty()) {
        if (have) logical.push_back(' ');
        logical.append(sv);
        have = true;
      }
      if (have && !continued) {
        *out = std::move(logical);
        return true;
      }
    }
    if (have) {
      *out = std::move(logical);
      return true;
    }
    return false;
  }

  const std::string& filename() const { return filename_; }
  int line() const { return line_; }

 private:
  std::istream& in_;
  std::string filename_;
  int line_ = 0;
};

/// Result-returning parser core.  Malformed input comes back as
/// kParseError with file/line; residual exceptions from the construction
/// API (duplicate names via FPGADBG_REQUIRE, check() failures) are caught
/// by the try_read_blif wrapper below.
Result<Netlist> read_blif_impl(std::istream& in, const std::string& filename) {
  LineReader reader(in, filename);

  std::string model_name = "top";
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<RawLatch> raw_latches;
  std::vector<RawNames> raw_names;

  std::string line;
  int line_no = 0;
  RawNames* open_names = nullptr;
  bool saw_model = false;
  while (reader.next(&line, &line_no)) {
    if (line[0] == '.') {
      open_names = nullptr;
      std::vector<std::string> tok = split_ws(line);
      const std::string& cmd = tok[0];
      if (cmd == ".model") {
        if (saw_model) break;  // only the first model is read
        saw_model = true;
        if (tok.size() >= 2) model_name = tok[1];
      } else if (cmd == ".inputs") {
        input_names.insert(input_names.end(), tok.begin() + 1, tok.end());
      } else if (cmd == ".outputs") {
        output_names.insert(output_names.end(), tok.begin() + 1, tok.end());
      } else if (cmd == ".latch") {
        if (tok.size() < 3) {
          return Status::parse_error(filename, line_no, ".latch needs input and output");
        }
        RawLatch l;
        l.input = tok[1];
        l.output = tok[2];
        l.line = line_no;
        // Optional: [<type> <control>] [<init>]
        if (tok.size() == 4) {
          l.init = static_cast<int>(parse_size(tok[3], "latch init"));
        } else if (tok.size() >= 6) {
          l.init = static_cast<int>(parse_size(tok[5], "latch init"));
        }
        raw_latches.push_back(std::move(l));
      } else if (cmd == ".names") {
        RawNames n;
        n.signals.assign(tok.begin() + 1, tok.end());
        if (n.signals.empty()) {
          return Status::parse_error(filename, line_no, ".names needs an output");
        }
        n.line = line_no;
        raw_names.push_back(std::move(n));
        open_names = &raw_names.back();
      } else if (cmd == ".end") {
        break;
      } else if (cmd == ".subckt" || cmd == ".gate") {
        return Status::parse_error(filename, line_no, "hierarchical BLIF (.subckt/.gate) is not supported");
      } else {
        // Ignore unknown dot-commands (.clock, .default_input_arrival, ...).
      }
    } else {
      if (open_names == nullptr) {
        return Status::parse_error(filename, line_no, "cover line outside .names");
      }
      std::vector<std::string> tok = split_ws(line);
      const std::size_t arity = open_names->signals.size() - 1;
      if (arity == 0) {
        if (tok.size() != 1 || tok[0].size() != 1) {
          return Status::parse_error(filename, line_no, "bad constant cover line");
        }
        open_names->cover.emplace_back("", tok[0][0]);
      } else {
        if (tok.size() != 2 || tok[0].size() != arity || tok[1].size() != 1) {
          return Status::parse_error(filename, line_no, "bad cover line");
        }
        open_names->cover.emplace_back(tok[0], tok[1][0]);
      }
    }
  }

  // --- build the netlist ---------------------------------------------------
  Netlist nl(model_name);
  for (const std::string& name : input_names) nl.add_input(name);
  for (const RawLatch& l : raw_latches) {
    if (nl.find(l.output)) {
      return Status::parse_error(filename, l.line, "latch output redefined: " + l.output);
    }
    nl.add_latch(l.output, kNullNode, l.init);
  }

  // .names bodies may reference signals defined later; resolve in two passes.
  // First create placeholder ids in definition order using a topological
  // fixpoint: repeatedly add nodes whose fanins are all known.
  std::vector<bool> built(raw_names.size(), false);
  std::size_t remaining = raw_names.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t i = 0; i < raw_names.size(); ++i) {
      if (built[i]) continue;
      const RawNames& rn = raw_names[i];
      bool ready = true;
      for (std::size_t s = 0; s + 1 < rn.signals.size(); ++s) {
        if (!nl.find(rn.signals[s])) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;

      const std::string& out_name = rn.signals.back();
      if (nl.find(out_name)) {
        return Status::parse_error(filename, rn.line, "signal redefined: " + out_name);
      }
      const int arity = static_cast<int>(rn.signals.size()) - 1;

      // Decide ON-set vs OFF-set semantics from the output column.
      logic::SopCover cover;
      cover.num_vars = arity;
      bool off_set = false;
      for (const auto& [plane, out_bit] : rn.cover) {
        if (out_bit == '0') off_set = true;
      }
      for (const auto& [plane, out_bit] : rn.cover) {
        if ((out_bit == '0') != off_set) {
          return Status::parse_error(filename, rn.line, "mixed ON/OFF-set covers are not supported");
        }
        cover.cubes.push_back(logic::Cube{plane});
      }
      logic::TruthTable tt = logic::cover_to_tt(cover);
      if (off_set) tt = ~tt;

      std::vector<NodeId> fanins;
      for (std::size_t s = 0; s + 1 < rn.signals.size(); ++s) {
        fanins.push_back(*nl.find(rn.signals[s]));
      }
      nl.add_logic(out_name, std::move(fanins), std::move(tt));
      built[i] = true;
      --remaining;
      progress = true;
    }
    if (!progress) {
      // Either an undefined signal or a combinational cycle.
      for (std::size_t i = 0; i < raw_names.size(); ++i) {
        if (built[i]) continue;
        const RawNames& rn = raw_names[i];
        for (std::size_t s = 0; s + 1 < rn.signals.size(); ++s) {
          bool defined_somewhere = false;
          for (const RawNames& other : raw_names) {
            if (other.signals.back() == rn.signals[s]) {
              defined_somewhere = true;
              break;
            }
          }
          if (!nl.find(rn.signals[s]) && !defined_somewhere) {
            return Status::parse_error(filename, rn.line, "undefined signal: " + rn.signals[s]);
          }
        }
      }
      return Status::parse_error(filename, reader.line(), "combinational cycle in .names definitions");
    }
  }

  // Connect latch drivers and primary outputs.
  for (std::size_t i = 0; i < raw_latches.size(); ++i) {
    auto driver = nl.find(raw_latches[i].input);
    if (!driver) {
      return Status::parse_error(filename, raw_latches[i].line, "undefined latch input: " + raw_latches[i].input);
    }
    nl.set_latch_input(i, *driver);
  }
  for (const std::string& name : output_names) {
    auto id = nl.find(name);
    if (!id) {
      return Status::parse_error(filename, reader.line(), "undefined output: " + name);
    }
    nl.add_output(*id, name);
  }
  nl.check();
  return nl;
}

}  // namespace

Result<Netlist> try_read_blif(std::istream& in, const std::string& filename) {
  try {
    return read_blif_impl(in, filename);
  } catch (...) {
    // Construction-API exceptions (redefinitions caught by FPGADBG_REQUIRE,
    // structural check() failures) are parse errors of this file too.
    support::Status s = support::status_from_current_exception();
    if (s.code() == support::StatusCode::kParseError) return s;
    return support::Status::parse_error(filename, 0, s.message());
  }
}

Result<Netlist> try_read_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return support::Status::not_found("cannot open BLIF file: " + path);
  return try_read_blif(in, path);
}

Netlist read_blif(std::istream& in, const std::string& filename) {
  return try_read_blif(in, filename).take_or_raise();
}

Netlist read_blif_file(const std::string& path) {
  return try_read_blif_file(path).take_or_raise();
}

void write_blif(const Netlist& nl, std::ostream& out) {
  out << ".model " << nl.model_name() << '\n';

  out << ".inputs";
  for (NodeId id : nl.inputs()) out << ' ' << nl.name(id);
  for (NodeId id : nl.params()) out << ' ' << nl.name(id);
  out << '\n';

  out << ".outputs";
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    out << ' ' << nl.output_names()[i];
  }
  out << '\n';

  for (const Latch& l : nl.latches()) {
    out << ".latch " << nl.name(l.input) << ' ' << nl.name(l.output) << ' '
        << l.init_value << '\n';
  }

  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    out << ".names";
    for (NodeId f : n.fanins) out << ' ' << nl.name(f);
    out << ' ' << n.name << '\n';
    const logic::SopCover cover = logic::tt_to_isop(n.function);
    if (n.fanins.empty()) {
      if (n.function.is_const1()) out << "1\n";
      // const0 is the empty cover: nothing to print.
    } else {
      for (const logic::Cube& cube : cover.cubes) {
        out << cube.literals << " 1\n";
      }
    }
  }

  // Primary outputs fed directly by sources (inputs/latches) need buffers so
  // the name exists as a .names output.
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    const NodeId id = nl.outputs()[i];
    const std::string& want = nl.output_names()[i];
    if (nl.name(id) != want) {
      out << ".names " << nl.name(id) << ' ' << want << "\n1 1\n";
    }
  }

  out << ".end\n";
}

void write_blif_file(const Netlist& nl, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open BLIF output file: " + path);
  write_blif(nl, out);
}

}  // namespace fpgadbg::netlist
