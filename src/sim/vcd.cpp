#include "sim/vcd.h"

#include <algorithm>
#include <ostream>

#include "sim/trace_buffer.h"
#include "support/error.h"

namespace fpgadbg::sim {

std::string sanitize_vcd_name(const std::string& signal_name) {
  // IEEE 1364 identifiers: [a-zA-Z_][a-zA-Z0-9_$]*.  '$' is legal mid-name
  // but collides with VCD keyword conventions in several viewers, and
  // brackets read as vector bit-selects — translate all of them to '_' so
  // GTKWave accepts any hierarchical name the netlist produces.
  std::string out;
  out.reserve(signal_name.size() + 1);
  for (char c : signal_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

VcdWriter::VcdWriter(std::ostream& out, std::string module,
                     std::string timescale)
    : out_(out), module_(std::move(module)), timescale_(std::move(timescale)) {}

void VcdWriter::declare(const std::string& signal_name) {
  FPGADBG_REQUIRE(!started_, "declare() after begin()");
  std::string name = sanitize_vcd_name(signal_name);
  // Distinct raw names must stay distinct after sanitization ("a$b" and
  // "a_b" would otherwise merge in the viewer).
  if (std::find(names_.begin(), names_.end(), name) != names_.end()) {
    int suffix = 2;
    std::string candidate;
    do {
      candidate = name + "_" + std::to_string(suffix++);
    } while (std::find(names_.begin(), names_.end(), candidate) !=
             names_.end());
    name = std::move(candidate);
  }
  names_.push_back(std::move(name));
}

std::string VcdWriter::id_code(std::size_t index) const {
  // Base-94 over the printable range '!'..'~'.
  std::string code;
  do {
    code.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return code;
}

void VcdWriter::begin() {
  FPGADBG_REQUIRE(!started_, "begin() called twice");
  FPGADBG_REQUIRE(!names_.empty(), "no signals declared");
  started_ = true;
  out_ << "$timescale " << timescale_ << " $end\n";
  out_ << "$scope module " << module_ << " $end\n";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    out_ << "$var wire 1 " << id_code(i) << ' ' << names_[i] << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  out_ << "$dumpvars\n";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    out_ << 'x' << id_code(i) << '\n';
  }
  out_ << "$end\n";
  last_ = BitVec(names_.size());
}

void VcdWriter::sample(std::uint64_t time, const BitVec& values) {
  FPGADBG_REQUIRE(started_, "sample() before begin()");
  FPGADBG_REQUIRE(values.size() == names_.size(), "sample width mismatch");
  bool header_written = false;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const bool value = values.get(i);
    if (any_sample_ && value == last_.get(i)) continue;
    if (!header_written) {
      out_ << '#' << time << '\n';
      header_written = true;
    }
    out_ << (value ? '1' : '0') << id_code(i) << '\n';
  }
  last_ = values;
  any_sample_ = true;
}

void VcdWriter::finish(std::uint64_t end_time) {
  FPGADBG_REQUIRE(started_, "finish() before begin()");
  out_ << '#' << end_time << '\n';
}

void write_vcd(std::ostream& out, const std::vector<std::string>& signals,
               const std::vector<BitVec>& window, const std::string& module) {
  VcdWriter writer(out, module);
  for (const auto& name : signals) writer.declare(name);
  writer.begin();
  for (std::size_t t = 0; t < window.size(); ++t) {
    writer.sample(t, window[t]);
  }
  writer.finish(window.size());
}

void write_vcd(std::ostream& out, const std::vector<std::string>& signals,
               const TraceBuffer& trace, const std::string& module) {
  VcdWriter writer(out, module);
  for (const auto& name : signals) writer.declare(name);
  writer.begin();
  std::uint64_t t = 0;
  trace.for_each_sample(
      [&](const BitVec& sample) { writer.sample(t++, sample); });
  writer.finish(t);
}

}  // namespace fpgadbg::sim
