#include "sim/fault.h"

#include <string>

namespace fpgadbg::sim {

std::string to_string(FaultType type) {
  switch (type) {
    case FaultType::kStuckAt0:
      return "stuck-at-0";
    case FaultType::kStuckAt1:
      return "stuck-at-1";
    case FaultType::kInvert:
      return "invert";
    case FaultType::kFlipOnCycle:
      return "flip-on-cycle";
  }
  return "unknown";
}

}  // namespace fpgadbg::sim
