#include "sim/batch_simulator.h"

#include <algorithm>

#include "sim/sim_kernels.h"
#include "support/error.h"
#include "support/telemetry.h"

namespace fpgadbg::sim {

namespace {

/// Evaluates one op for the block range [b0, b1).  The fanin base pointers
/// and the mask are loop-invariant, so the whole per-block body reduces to K
/// contiguous loads, the unrolled Shannon arithmetic, and one contiguous
/// store — exactly the shape the auto-vectorizer wants.
template <int K>
void eval_op_blocks(std::uint64_t mask, const std::uint64_t* const* in,
                    std::uint64_t* out, std::size_t b0, std::size_t b1) {
  for (std::size_t b = b0; b < b1; ++b) {
    if constexpr (K == 0) {
      out[b] = kernels::shannon<0>(mask, nullptr);
    } else {
      std::uint64_t w[K];
      for (int j = 0; j < K; ++j) w[j] = in[j][b];
      out[b] = kernels::shannon<K>(mask, w);
    }
  }
}

void eval_op_blocks_dispatch(std::uint64_t mask, std::uint32_t arity,
                             const std::uint64_t* const* in,
                             std::uint64_t* out, std::size_t b0,
                             std::size_t b1) {
  switch (arity) {
    case 0: eval_op_blocks<0>(mask, in, out, b0, b1); break;
    case 1: eval_op_blocks<1>(mask, in, out, b0, b1); break;
    case 2: eval_op_blocks<2>(mask, in, out, b0, b1); break;
    case 3: eval_op_blocks<3>(mask, in, out, b0, b1); break;
    case 4: eval_op_blocks<4>(mask, in, out, b0, b1); break;
    case 5: eval_op_blocks<5>(mask, in, out, b0, b1); break;
    default: eval_op_blocks<6>(mask, in, out, b0, b1); break;
  }
}

std::size_t popcount_words(const std::vector<std::uint64_t>& words) {
  std::size_t n = 0;
  for (std::uint64_t w : words) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

}  // namespace

BatchSimulator::BatchSimulator(const netlist::Netlist& nl,
                               BatchSimOptions options)
    : prog_(lower_program(nl)), opts_(options) {
  init();
}

BatchSimulator::BatchSimulator(const map::MappedNetlist& mn,
                               BatchSimOptions options)
    : prog_(lower_program(mn)), opts_(options) {
  init();
}

void BatchSimulator::init() {
  FPGADBG_REQUIRE(opts_.blocks >= 1, "batch must have at least one block");
  blocks_ = opts_.blocks;
  if (opts_.num_threads == 0) {
    pool_ = &ThreadPool::global();
  } else if (opts_.num_threads > 1) {
    own_pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
    pool_ = own_pool_.get();
  }
  if (pool_ && pool_->size() <= 1) pool_ = nullptr;
  if (opts_.min_blocks_per_task == 0) opts_.min_blocks_per_task = 1;
  values_.assign(prog_.num_slots * blocks_, 0);
  latch_words_.assign(prog_.latches.size() * blocks_, 0);
  op_has_fault_.assign(prog_.ops.size(), 0);
  faulted_mask_.assign(blocks_, 0);
  telemetry::metrics().counter("sim.batch.engines").add(1);
  reset();
}

void BatchSimulator::reset() {
  cycle_ = 0;
  for (std::size_t i = 0; i < prog_.latches.size(); ++i) {
    const std::uint64_t w = kernels::broadcast(prog_.latches[i].init != 0);
    std::fill_n(latch_words_.begin() + i * blocks_, blocks_, w);
    std::fill_n(slot_words(prog_.latches[i].out_slot), blocks_, w);
  }
}

void BatchSimulator::set_input_word(std::uint32_t id, std::size_t block,
                                    std::uint64_t word) {
  FPGADBG_REQUIRE(id < prog_.num_design_nodes &&
                      prog_.node_kind[id] == SimProgram::SlotKind::kInput,
                  "set_input target is not an input");
  FPGADBG_REQUIRE(block < blocks_, "scenario block out of range");
  slot_words(id)[block] = word;
}

void BatchSimulator::set_param_word(std::uint32_t id, std::size_t block,
                                    std::uint64_t word) {
  FPGADBG_REQUIRE(id < prog_.num_design_nodes &&
                      prog_.node_kind[id] == SimProgram::SlotKind::kParam,
                  "set_param target is not a parameter");
  FPGADBG_REQUIRE(block < blocks_, "scenario block out of range");
  slot_words(id)[block] = word;
}

void BatchSimulator::broadcast_input(std::uint32_t id, bool value) {
  FPGADBG_REQUIRE(id < prog_.num_design_nodes &&
                      prog_.node_kind[id] == SimProgram::SlotKind::kInput,
                  "set_input target is not an input");
  std::fill_n(slot_words(id), blocks_, kernels::broadcast(value));
}

void BatchSimulator::broadcast_param(std::uint32_t id, bool value) {
  FPGADBG_REQUIRE(id < prog_.num_design_nodes &&
                      prog_.node_kind[id] == SimProgram::SlotKind::kParam,
                  "set_param target is not a parameter");
  std::fill_n(slot_words(id), blocks_, kernels::broadcast(value));
}

void BatchSimulator::run_blocks(std::size_t b0, std::size_t b1, bool clock) {
  const std::size_t B = blocks_;
  std::uint64_t* vals = values_.data();
  // Latch Q values feed this pass's combinational logic.
  for (std::size_t i = 0; i < prog_.latches.size(); ++i) {
    std::copy(latch_words_.begin() + i * B + b0,
              latch_words_.begin() + i * B + b1,
              vals + static_cast<std::size_t>(prog_.latches[i].out_slot) * B +
                  b0);
  }
  const SimOp* ops = prog_.ops.data();
  const std::uint32_t* arena = prog_.fanins.data();
  const std::uint8_t* op_fault = op_has_fault_.data();
  const bool have_faults = !faults_by_op_.empty();
  for (std::size_t i = 0; i < prog_.ops.size(); ++i) {
    const SimOp& op = ops[i];
    const std::uint32_t* f = arena + op.fanin_begin;
    const std::uint32_t k = op.fanin_count;
    const std::uint64_t* in[SimProgram::kMaxOpArity];
    for (std::uint32_t j = 0; j < k; ++j) {
      in[j] = vals + static_cast<std::size_t>(f[j]) * B;
    }
    std::uint64_t* out = vals + static_cast<std::size_t>(op.out) * B;
    eval_op_blocks_dispatch(op.mask, k, in, out, b0, b1);
    if (have_faults && op_fault[i]) {
      for (const BatchFault& bf :
           faults_by_op_.find(static_cast<std::uint32_t>(i))->second) {
        for (std::size_t b = b0; b < b1; ++b) {
          const std::uint64_t m = bf.mask[b];
          if (m != 0) {
            out[b] = kernels::apply_fault_masked(bf.fault, out[b], m, cycle_);
          }
        }
      }
    }
  }
  if (clock) {
    for (std::size_t i = 0; i < prog_.latches.size(); ++i) {
      const std::uint64_t* d =
          vals + static_cast<std::size_t>(prog_.latches[i].in_slot) * B;
      std::copy(d + b0, d + b1, latch_words_.begin() + i * B + b0);
    }
  }
}

template <typename Fn>
void BatchSimulator::for_block_ranges(const Fn& fn) {
  const std::size_t min_task = opts_.min_blocks_per_task;
  if (pool_ == nullptr || blocks_ < 2 * min_task) {
    fn(std::size_t{0}, blocks_);
    return;
  }
  std::size_t tasks = std::min(pool_->size() * 4, blocks_ / min_task);
  if (tasks < 2) tasks = 2;
  const std::size_t chunk = (blocks_ + tasks - 1) / tasks;
  pool_->parallel_for(tasks, [&](std::size_t t) {
    // "sim" category: recorded only under a full --trace sink (the span
    // fires per sweep, which is per emulated cycle).  Parent-links to the
    // sim.batch.eval/step span through the pool's context capture.
    telemetry::TraceScope shard_span("sim.batch.shard", "sim");
    const std::size_t b0 = t * chunk;
    const std::size_t b1 = std::min(blocks_, b0 + chunk);
    if (b0 < b1) fn(b0, b1);
  });
}

void BatchSimulator::eval() {
  telemetry::TraceScope span("sim.batch.eval", "sim");
  static telemetry::Counter& blocks_swept =
      telemetry::metrics().counter("sim.batch.blocks");
  blocks_swept.add(blocks_);
  for_block_ranges(
      [this](std::size_t b0, std::size_t b1) { run_blocks(b0, b1, false); });
}

void BatchSimulator::step() {
  telemetry::TraceScope span("sim.batch.step", "sim");
  static telemetry::Counter& blocks_swept =
      telemetry::metrics().counter("sim.batch.blocks");
  static telemetry::Counter& scenario_cycles =
      telemetry::metrics().counter("sim.batch.scenario_cycles");
  blocks_swept.add(blocks_);
  scenario_cycles.add(num_scenarios());
  // One parallel region per step: each task evaluates and clocks its own
  // block range, so there is no barrier between eval and the latch update.
  for_block_ranges(
      [this](std::size_t b0, std::size_t b1) { run_blocks(b0, b1, true); });
  ++cycle_;
}

BatchSimulator::BatchView BatchSimulator::view(std::uint32_t slot) const {
  FPGADBG_REQUIRE(slot < prog_.num_slots, "slot out of range");
  return BatchView(slot_words(slot), blocks_);
}

std::uint64_t BatchSimulator::word(std::uint32_t id,
                                   std::size_t block) const {
  FPGADBG_REQUIRE(id < prog_.num_slots, "slot out of range");
  FPGADBG_REQUIRE(block < blocks_, "scenario block out of range");
  return slot_words(id)[block];
}

bool BatchSimulator::value(std::uint32_t id, std::size_t scenario) const {
  FPGADBG_REQUIRE(scenario < num_scenarios(), "scenario out of range");
  return (word(id, scenario / kLanesPerBlock) >>
          (scenario % kLanesPerBlock)) &
         1;
}

BatchSimulator::BatchView BatchSimulator::output_view(
    std::size_t index) const {
  FPGADBG_REQUIRE(index < prog_.outputs.size(), "output index out of range");
  return BatchView(slot_words(prog_.outputs[index]), blocks_);
}

std::uint64_t BatchSimulator::output_word(std::size_t index,
                                          std::size_t block) const {
  FPGADBG_REQUIRE(index < prog_.outputs.size(), "output index out of range");
  return word(prog_.outputs[index], block);
}

bool BatchSimulator::output_value(std::size_t index,
                                  std::size_t scenario) const {
  FPGADBG_REQUIRE(index < prog_.outputs.size(), "output index out of range");
  return value(prog_.outputs[index], scenario);
}

void BatchSimulator::account_fault(const Fault& fault,
                                   std::vector<std::uint64_t> mask) {
  faults_.push_back(fault);
  const std::uint32_t op = prog_.op_of_node[fault.node];
  if (op == kNoOp) return;  // source node: never re-evaluated, no effect
  const std::size_t before = popcount_words(faulted_mask_);
  for (std::size_t b = 0; b < blocks_; ++b) faulted_mask_[b] |= mask[b];
  const std::size_t added = popcount_words(faulted_mask_) - before;
  if (added != 0) {
    telemetry::metrics().counter("sim.batch.faulted_scenarios").add(added);
  }
  faults_by_op_[op].push_back(BatchFault{fault, std::move(mask)});
  op_has_fault_[op] = 1;
}

void BatchSimulator::inject_fault(const Fault& fault, std::size_t scenario) {
  FPGADBG_REQUIRE(fault.node < prog_.num_design_nodes,
                  "fault node out of range");
  std::vector<std::uint64_t> mask(blocks_, 0);
  if (scenario == kAllScenarios) {
    std::fill(mask.begin(), mask.end(), ~0ULL);
  } else {
    FPGADBG_REQUIRE(scenario < num_scenarios(), "fault scenario out of range");
    mask[scenario / kLanesPerBlock] = 1ULL << (scenario % kLanesPerBlock);
  }
  account_fault(fault, std::move(mask));
}

void BatchSimulator::inject_fault_masked(
    const Fault& fault, const std::vector<std::uint64_t>& mask) {
  FPGADBG_REQUIRE(fault.node < prog_.num_design_nodes,
                  "fault node out of range");
  FPGADBG_REQUIRE(mask.size() == blocks_,
                  "fault mask has wrong number of blocks");
  account_fault(fault, mask);
}

void BatchSimulator::clear_faults() {
  faults_.clear();
  faults_by_op_.clear();
  std::fill(op_has_fault_.begin(), op_has_fault_.end(), 0);
  std::fill(faulted_mask_.begin(), faulted_mask_.end(), 0);
}

std::size_t BatchSimulator::num_faulted_scenarios() const {
  return popcount_words(faulted_mask_);
}

BatchSimulator::Snapshot BatchSimulator::snapshot() const {
  Snapshot snap;
  snap.blocks = blocks_;
  snap.latch_words = latch_words_;
  snap.cycle = cycle_;
  return snap;
}

void BatchSimulator::restore(const Snapshot& snapshot) {
  FPGADBG_REQUIRE(snapshot.version == kSnapshotVersion,
                  "snapshot from an incompatible engine version");
  FPGADBG_REQUIRE(snapshot.blocks == blocks_,
                  "snapshot was taken at a different batch width");
  FPGADBG_REQUIRE(snapshot.latch_words.size() == latch_words_.size(),
                  "snapshot is for a different design");
  latch_words_ = snapshot.latch_words;
  cycle_ = snapshot.cycle;
  for (std::size_t i = 0; i < prog_.latches.size(); ++i) {
    std::copy(latch_words_.begin() + i * blocks_,
              latch_words_.begin() + (i + 1) * blocks_,
              slot_words(prog_.latches[i].out_slot));
  }
}

}  // namespace fpgadbg::sim
