#include "sim/sim_backend.h"

#include <cstdlib>

#include "support/error.h"

namespace fpgadbg::sim {

std::string to_string(SimBackend backend) {
  switch (backend) {
    case SimBackend::kInterpreted:
      return "interpreted";
    case SimBackend::kCompiled:
      return "compiled";
  }
  return "unknown";
}

SimBackend parse_sim_backend(const std::string& name) {
  if (name == "interpreted") return SimBackend::kInterpreted;
  if (name == "compiled") return SimBackend::kCompiled;
  throw Error("unknown simulation backend: " + name);
}

SimBackend default_sim_backend() {
  if (const char* env = std::getenv("FPGADBG_SIM_BACKEND")) {
    return parse_sim_backend(env);
  }
  return SimBackend::kCompiled;
}

std::size_t default_batch_blocks() {
  if (const char* env = std::getenv("FPGADBG_SIM_BATCH_BLOCKS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v < 1) return 1;
    if (v > 4096) return 4096;
    return static_cast<std::size_t>(v);
  }
  return 64;
}

}  // namespace fpgadbg::sim
