// Simulation backend selection.
//
// Every consumer of functional simulation (equivalence checking, the debug
// session's emulated DUT, the benches) picks its engine through this enum:
// the per-node truth-table interpreters stay available as the oracle, while
// the compiled levelized engine is the default fast path.  The process-wide
// default can be overridden with FPGADBG_SIM_BACKEND=interpreted|compiled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fpgadbg::sim {

enum class SimBackend : std::uint8_t {
  kInterpreted,  ///< walk the netlist per node (NetlistSimulator-style oracle)
  kCompiled,     ///< lowered levelized LUT6 program (CompiledSimulator)
};

std::string to_string(SimBackend backend);

/// Parses "interpreted" or "compiled"; throws fpgadbg::Error otherwise.
SimBackend parse_sim_backend(const std::string& name);

/// kCompiled unless the FPGADBG_SIM_BACKEND environment variable overrides.
SimBackend default_sim_backend();

/// Scenario blocks per BatchSimulator pass (each block is 64 scenarios).
/// 64 unless the FPGADBG_SIM_BATCH_BLOCKS environment variable overrides;
/// values are clamped to [1, 4096].
std::size_t default_batch_blocks();

}  // namespace fpgadbg::sim
