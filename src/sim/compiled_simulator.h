// Compiled, levelized, word-parallel netlist simulation.
//
// At construction the design is lowered into a SimProgram (flat fanin arena
// + packed 64-bit LUT masks, ops bucketed by logic level); eval() then sweeps
// the levels with branch-free Shannon kernels over 64-bit lane words.  The
// same engine serves both stimulus styles:
//   * scalar mode — the NetlistSimulator-compatible bool API broadcasts each
//     value across all 64 lanes, so value(id) is just lane 0;
//   * word mode — the ParallelSimulator-compatible API drives 64 independent
//     stimulus streams per step, one bit lane each.
// An optional event-driven mode skips every op whose fanins did not change
// since the previous eval (dirty flags propagated level by level), and wide
// levels are swept with ThreadPool::parallel_for when a pool with more than
// one worker is configured.  Faults are indexed per op at injection time, so
// fault-free simulation pays nothing for the fault machinery.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "map/mapped_netlist.h"
#include "netlist/netlist.h"
#include "sim/fault.h"
#include "sim/sim_program.h"
#include "support/thread_pool.h"

namespace fpgadbg::sim {

struct CompiledSimOptions {
  /// Skip fanout cones whose inputs did not change between evals.
  bool event_driven = false;
  /// 0 shares ThreadPool::global(); 1 forces serial sweeps; N > 1 builds a
  /// dedicated pool of N workers.
  std::size_t num_threads = 0;
  /// Minimum ops in a level before the sweep is dispatched to the pool.
  std::size_t parallel_min_level_width = 1024;
};

class CompiledSimulator {
 public:
  static constexpr std::size_t kLanes = 64;

  explicit CompiledSimulator(const netlist::Netlist& nl,
                             CompiledSimOptions options = {});
  explicit CompiledSimulator(const map::MappedNetlist& mn,
                             CompiledSimOptions options = {});

  const SimProgram& program() const { return prog_; }
  const CompiledSimOptions& options() const { return opts_; }

  /// Reset latches of all 64 streams to their init values.
  void reset();

  // --- scalar (broadcast) stimulus ---------------------------------------
  void set_input(std::uint32_t id, bool value);
  void set_inputs(const std::vector<bool>& values);
  void set_param(std::uint32_t id, bool value);
  void set_params(const std::vector<bool>& values);

  // --- word-parallel stimulus (bit i = stream i) -------------------------
  void set_input_word(std::uint32_t id, std::uint64_t word);
  void set_param_word(std::uint32_t id, std::uint64_t word);

  /// Propagate combinationally (does not advance latches).
  void eval();
  /// eval() then clock all latches.
  void step();

  bool value(std::uint32_t id) const { return values_[id] & 1; }
  bool value(std::uint32_t id, std::size_t lane) const {
    return (values_[id] >> lane) & 1;
  }
  std::uint64_t word(std::uint32_t id) const { return values_[id]; }
  bool output(std::size_t index) const;
  std::uint64_t output_word(std::size_t index) const;
  std::vector<bool> output_values() const;

  /// Install/remove a fault.  Faults on source nodes have no effect (they
  /// are never re-evaluated), matching the NetlistSimulator oracle.
  void inject_fault(const Fault& fault);
  void clear_faults();
  const std::vector<Fault>& faults() const { return faults_; }

  std::uint64_t cycle() const { return cycle_; }

  /// Sequential state of all 64 streams (latch lane words + cycle counter).
  /// The version and lane width make the snapshot's shape explicit: restore()
  /// rejects snapshots taken by an incompatible engine or at a different
  /// batch width instead of silently corrupting latch state.
  static constexpr std::uint32_t kSnapshotVersion = 1;
  struct Snapshot {
    std::uint32_t version = kSnapshotVersion;
    std::uint32_t lanes = kLanes;
    std::vector<std::uint64_t> latch_words;
    std::uint64_t cycle = 0;
  };
  Snapshot snapshot() const {
    return Snapshot{kSnapshotVersion, kLanes, latch_words_, cycle_};
  }
  void restore(const Snapshot& snapshot);

 private:
  void init();
  void set_source_word(std::uint32_t slot, std::uint64_t word);
  void run_ops(std::size_t begin, std::size_t end, bool full);
  void sweep_level(std::size_t begin, std::size_t end, bool full);

  SimProgram prog_;
  CompiledSimOptions opts_;
  std::unique_ptr<ThreadPool> own_pool_;
  ThreadPool* pool_ = nullptr;  ///< null when sweeps are always serial
  std::vector<std::uint64_t> values_;      ///< lane word per slot
  std::vector<std::uint64_t> latch_words_;
  std::vector<std::uint8_t> dirty_;        ///< per slot; event mode only
  std::vector<std::uint8_t> op_has_fault_;
  std::unordered_map<std::uint32_t, std::vector<Fault>> faults_by_op_;
  std::vector<Fault> faults_;
  /// True while every source word ever driven has been a broadcast (all-0 or
  /// all-1): the sweep then takes a per-op indexed-lookup fast path instead
  /// of the Shannon walk.  Sticky false once any word stimulus mixes lanes.
  bool uniform_ = true;
  bool full_eval_pending_ = true;
  std::uint64_t cycle_ = 0;
};

}  // namespace fpgadbg::sim
