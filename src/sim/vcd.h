// VCD (Value Change Dump, IEEE 1364) waveform writer.
//
// Debug sessions capture trace windows; dumping them as VCD lets any
// standard waveform viewer (GTKWave etc.) display what the trace buffers
// saw.  The writer is change-based: a sample only emits the bits that
// toggled since the previous sample.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/bitvec.h"

namespace fpgadbg::sim {

class TraceBuffer;

/// Translates an arbitrary hierarchical signal name into an identifier VCD
/// viewers accept: spaces, '$', brackets and other reserved characters
/// become '_' ("add$out[3]" -> "add_out_3_"), and a leading digit gets a
/// '_' prefix.  Exposed for tests; VcdWriter::declare applies it (and
/// de-duplicates collisions) automatically.
std::string sanitize_vcd_name(const std::string& signal_name);

class VcdWriter {
 public:
  /// `timescale` is a VCD timescale string, e.g. "1ns".
  explicit VcdWriter(std::ostream& out, std::string module = "dut",
                     std::string timescale = "1ns");

  /// Declare signals before writing the header; order defines the sample
  /// bit order.  Names are sanitized (sanitize_vcd_name) and, if two
  /// sanitized names collide, suffixed "_2", "_3", ... to stay distinct.
  void declare(const std::string& signal_name);

  /// Writes the VCD header + $dumpvars block with everything at x.
  void begin();

  /// Emits changes for one sample at `time`; sample.size() must equal the
  /// number of declared signals.
  void sample(std::uint64_t time, const BitVec& values);

  /// Final timestamp (optional, closes the wave cleanly).
  void finish(std::uint64_t end_time);

  std::size_t num_signals() const { return names_.size(); }

 private:
  std::string id_code(std::size_t index) const;

  std::ostream& out_;
  std::string module_;
  std::string timescale_;
  std::vector<std::string> names_;
  BitVec last_;
  bool started_ = false;
  bool any_sample_ = false;
};

/// Convenience: dump a whole captured window (oldest first, one sample per
/// time unit) for the given signal names.
void write_vcd(std::ostream& out, const std::vector<std::string>& signals,
               const std::vector<BitVec>& window,
               const std::string& module = "dut");

/// Zero-copy variant: streams the trace buffer's stored window directly via
/// TraceBuffer::for_each_sample, without materializing a window copy.
void write_vcd(std::ostream& out, const std::vector<std::string>& signals,
               const TraceBuffer& trace, const std::string& module = "dut");

}  // namespace fpgadbg::sim
