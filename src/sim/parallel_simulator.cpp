#include "sim/parallel_simulator.h"

#include "support/error.h"

namespace fpgadbg::sim {

using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;

ParallelSimulator::ParallelSimulator(const Netlist& nl)
    : nl_(nl), topo_(nl.topo_order()), values_(nl.num_nodes(), 0) {
  latch_state_.resize(nl.latches().size(), 0);
  reset();
}

void ParallelSimulator::reset() {
  cycle_ = 0;
  for (std::size_t i = 0; i < nl_.latches().size(); ++i) {
    latch_state_[i] = nl_.latches()[i].init_value == 1 ? ~0ULL : 0ULL;
    values_[nl_.latches()[i].output] = latch_state_[i];
  }
}

void ParallelSimulator::set_input_word(NodeId id, std::uint64_t word) {
  FPGADBG_REQUIRE(id < nl_.num_nodes(), "set_input_word node id out of range");
  FPGADBG_REQUIRE(nl_.kind(id) == NodeKind::kInput,
                  "set_input_word target is not an input");
  values_[id] = word;
}

void ParallelSimulator::set_param_word(NodeId id, std::uint64_t word) {
  FPGADBG_REQUIRE(id < nl_.num_nodes(), "set_param_word node id out of range");
  FPGADBG_REQUIRE(nl_.kind(id) == NodeKind::kParam,
                  "set_param_word target is not a parameter");
  values_[id] = word;
}

void ParallelSimulator::eval() {
  for (std::size_t i = 0; i < nl_.latches().size(); ++i) {
    values_[nl_.latches()[i].output] = latch_state_[i];
  }
  for (NodeId id : topo_) {
    const auto& node = nl_.node(id);
    const std::size_t arity = node.fanins.size();
    // Word-parallel truth-table evaluation: OR of minterm products.
    std::uint64_t result = 0;
    const std::size_t minterms = std::size_t{1} << arity;
    for (std::size_t m = 0; m < minterms; ++m) {
      if (!node.function.bit(m)) continue;
      std::uint64_t term = ~0ULL;
      for (std::size_t v = 0; v < arity && term != 0; ++v) {
        const std::uint64_t w = values_[node.fanins[v]];
        term &= ((m >> v) & 1) ? w : ~w;
      }
      result |= term;
    }
    values_[id] = result;
  }
}

void ParallelSimulator::step() {
  eval();
  for (std::size_t i = 0; i < nl_.latches().size(); ++i) {
    latch_state_[i] = values_[nl_.latches()[i].input];
  }
  ++cycle_;
}

std::uint64_t ParallelSimulator::output_word(std::size_t index) const {
  FPGADBG_REQUIRE(index < nl_.outputs().size(), "output index out of range");
  return values_[nl_.outputs()[index]];
}

}  // namespace fpgadbg::sim
