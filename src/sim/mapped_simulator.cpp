#include "sim/mapped_simulator.h"

#include "support/error.h"

namespace fpgadbg::sim {

using map::CellId;
using map::MappedNetlist;
using map::MKind;

MappedSimulator::MappedSimulator(const MappedNetlist& mn)
    : mn_(mn), topo_(mn.topo_order()), values_(mn.num_cells(), 0) {
  latch_state_.resize(mn.latches().size(), 0);
  reset();
}

void MappedSimulator::reset() {
  cycle_ = 0;
  for (std::size_t i = 0; i < mn_.latches().size(); ++i) {
    latch_state_[i] = mn_.latches()[i].init_value == 1 ? 1 : 0;
    values_[mn_.latches()[i].output] = latch_state_[i];
  }
}

void MappedSimulator::set_input(CellId id, bool value) {
  FPGADBG_REQUIRE(mn_.cell(id).kind == MKind::kInput,
                  "set_input target is not an input");
  values_[id] = value ? 1 : 0;
}

void MappedSimulator::set_input(const std::string& name, bool value) {
  const auto id = mn_.find(name);
  FPGADBG_REQUIRE(id.has_value(), "unknown input: " + name);
  set_input(*id, value);
}

void MappedSimulator::set_inputs(const std::vector<bool>& values) {
  FPGADBG_REQUIRE(values.size() == mn_.inputs().size(),
                  "set_inputs size mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    values_[mn_.inputs()[i]] = values[i] ? 1 : 0;
  }
}

void MappedSimulator::set_param(CellId id, bool value) {
  FPGADBG_REQUIRE(mn_.cell(id).kind == MKind::kParam,
                  "set_param target is not a parameter");
  values_[id] = value ? 1 : 0;
}

void MappedSimulator::set_params(const std::vector<bool>& values) {
  FPGADBG_REQUIRE(values.size() == mn_.params().size(),
                  "set_params size mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    values_[mn_.params()[i]] = values[i] ? 1 : 0;
  }
}

void MappedSimulator::eval() {
  for (std::size_t i = 0; i < mn_.latches().size(); ++i) {
    values_[mn_.latches()[i].output] = latch_state_[i];
  }
  for (CellId id : topo_) {
    const auto& cell = mn_.cell(id);
    std::uint64_t assignment = 0;
    std::size_t v = 0;
    for (CellId in : cell.data_inputs) {
      if (values_[in]) assignment |= 1ULL << v;
      ++v;
    }
    for (CellId in : cell.param_inputs) {
      if (values_[in]) assignment |= 1ULL << v;
      ++v;
    }
    values_[id] = cell.function.evaluate(assignment) ? 1 : 0;
  }
}

void MappedSimulator::step() {
  eval();
  for (std::size_t i = 0; i < mn_.latches().size(); ++i) {
    latch_state_[i] = values_[mn_.latches()[i].input];
  }
  ++cycle_;
}

bool MappedSimulator::output(std::size_t index) const {
  FPGADBG_REQUIRE(index < mn_.outputs().size(), "output index out of range");
  return values_[mn_.outputs()[index]] != 0;
}

MappedSimulator::Snapshot MappedSimulator::snapshot() const {
  return Snapshot{latch_state_, cycle_};
}

void MappedSimulator::restore(const Snapshot& snap) {
  FPGADBG_REQUIRE(snap.latch_state.size() == latch_state_.size(),
                  "snapshot is for a different design");
  latch_state_ = snap.latch_state;
  cycle_ = snap.cycle;
  for (std::size_t i = 0; i < mn_.latches().size(); ++i) {
    values_[mn_.latches()[i].output] = latch_state_[i];
  }
}

std::vector<bool> MappedSimulator::output_values() const {
  std::vector<bool> out;
  out.reserve(mn_.outputs().size());
  for (CellId id : mn_.outputs()) out.push_back(values_[id] != 0);
  return out;
}

}  // namespace fpgadbg::sim
