#include "sim/mapped_simulator.h"

#include "support/error.h"

namespace fpgadbg::sim {

using map::CellId;
using map::MappedNetlist;
using map::MKind;

MappedSimulator::MappedSimulator(const MappedNetlist& mn, SimBackend backend)
    : mn_(mn), backend_(backend) {
  if (backend_ == SimBackend::kCompiled) {
    engine_.emplace(mn);
    return;
  }
  topo_ = mn.topo_order();
  values_.assign(mn.num_cells(), 0);
  latch_state_.resize(mn.latches().size(), 0);
  reset();
}

void MappedSimulator::reset() {
  if (engine_) {
    engine_->reset();
    return;
  }
  cycle_ = 0;
  for (std::size_t i = 0; i < mn_.latches().size(); ++i) {
    latch_state_[i] = mn_.latches()[i].init_value == 1 ? 1 : 0;
    values_[mn_.latches()[i].output] = latch_state_[i];
  }
}

void MappedSimulator::set_input(CellId id, bool value) {
  FPGADBG_REQUIRE(mn_.cell(id).kind == MKind::kInput,
                  "set_input target is not an input");
  if (engine_) {
    engine_->set_input(id, value);
  } else {
    values_[id] = value ? 1 : 0;
  }
}

void MappedSimulator::set_input(const std::string& name, bool value) {
  const auto id = mn_.find(name);
  FPGADBG_REQUIRE(id.has_value(), "unknown input: " + name);
  set_input(*id, value);
}

void MappedSimulator::set_inputs(const std::vector<bool>& values) {
  FPGADBG_REQUIRE(values.size() == mn_.inputs().size(),
                  "set_inputs size mismatch");
  if (engine_) {
    engine_->set_inputs(values);
    return;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    values_[mn_.inputs()[i]] = values[i] ? 1 : 0;
  }
}

void MappedSimulator::set_param(CellId id, bool value) {
  FPGADBG_REQUIRE(mn_.cell(id).kind == MKind::kParam,
                  "set_param target is not a parameter");
  if (engine_) {
    engine_->set_param(id, value);
  } else {
    values_[id] = value ? 1 : 0;
  }
}

void MappedSimulator::set_params(const std::vector<bool>& values) {
  FPGADBG_REQUIRE(values.size() == mn_.params().size(),
                  "set_params size mismatch");
  if (engine_) {
    engine_->set_params(values);
    return;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    values_[mn_.params()[i]] = values[i] ? 1 : 0;
  }
}

void MappedSimulator::eval() {
  if (engine_) {
    engine_->eval();
    return;
  }
  for (std::size_t i = 0; i < mn_.latches().size(); ++i) {
    values_[mn_.latches()[i].output] = latch_state_[i];
  }
  for (CellId id : topo_) {
    const auto& cell = mn_.cell(id);
    std::uint64_t assignment = 0;
    std::size_t v = 0;
    for (CellId in : cell.data_inputs) {
      if (values_[in]) assignment |= 1ULL << v;
      ++v;
    }
    for (CellId in : cell.param_inputs) {
      if (values_[in]) assignment |= 1ULL << v;
      ++v;
    }
    values_[id] = cell.function.evaluate(assignment) ? 1 : 0;
  }
}

void MappedSimulator::step() {
  if (engine_) {
    engine_->step();
    return;
  }
  eval();
  for (std::size_t i = 0; i < mn_.latches().size(); ++i) {
    latch_state_[i] = values_[mn_.latches()[i].input];
  }
  ++cycle_;
}

bool MappedSimulator::output(std::size_t index) const {
  FPGADBG_REQUIRE(index < mn_.outputs().size(), "output index out of range");
  return engine_ ? engine_->output(index)
                 : values_[mn_.outputs()[index]] != 0;
}

MappedSimulator::Snapshot MappedSimulator::snapshot() const {
  if (!engine_) return Snapshot{latch_state_, cycle_};
  const auto snap = engine_->snapshot();
  Snapshot out;
  out.cycle = snap.cycle;
  out.latch_state.reserve(snap.latch_words.size());
  // Scalar stimulus broadcasts across all lanes, so lane 0 carries the state.
  for (std::uint64_t w : snap.latch_words) {
    out.latch_state.push_back(static_cast<std::uint8_t>(w & 1));
  }
  return out;
}

void MappedSimulator::restore(const Snapshot& snap) {
  if (!engine_) {
    FPGADBG_REQUIRE(snap.latch_state.size() == latch_state_.size(),
                    "snapshot is for a different design");
    latch_state_ = snap.latch_state;
    cycle_ = snap.cycle;
    for (std::size_t i = 0; i < mn_.latches().size(); ++i) {
      values_[mn_.latches()[i].output] = latch_state_[i];
    }
    return;
  }
  CompiledSimulator::Snapshot full;
  full.cycle = snap.cycle;
  full.latch_words.reserve(snap.latch_state.size());
  for (std::uint8_t b : snap.latch_state) {
    full.latch_words.push_back(b ? ~0ULL : 0ULL);
  }
  engine_->restore(full);
}

std::vector<bool> MappedSimulator::output_values() const {
  if (engine_) return engine_->output_values();
  std::vector<bool> out;
  out.reserve(mn_.outputs().size());
  for (CellId id : mn_.outputs()) out.push_back(values_[id] != 0);
  return out;
}

}  // namespace fpgadbg::sim
