// Lowered simulation programs.
//
// A SimProgram is the compiled form of a Netlist or MappedNetlist: every
// combinational node becomes one or more flat LUT ops — a packed 64-bit mask
// over at most six fanins — stored in one contiguous arena and bucketed by
// logic level.  Functions wider than six inputs are Shannon-split into a
// LUT6 cascade (cofactor subtrees joined by 2:1 mux ops) at lowering time,
// so the evaluator never sees an op it cannot execute branch-free.
//
// Slots [0, num_design_nodes) mirror the source design's node/cell ids
// one-to-one; cascade temporaries occupy the slots above.  Ops within one
// level never read each other's outputs, which is what lets the evaluator
// sweep a level with ThreadPool::parallel_for.
#pragma once

#include <cstdint>
#include <vector>

#include "map/mapped_netlist.h"
#include "netlist/netlist.h"

namespace fpgadbg::sim {

inline constexpr std::uint32_t kNoOp = 0xffffffffu;

/// One flat LUT evaluation: out <- mask(fanins[fanin_begin .. +fanin_count)).
struct SimOp {
  std::uint64_t mask = 0;         ///< truth table, low 2^fanin_count bits
  std::uint32_t out = 0;          ///< destination value slot
  std::uint32_t fanin_begin = 0;  ///< index into SimProgram::fanins
  std::uint32_t fanin_count = 0;  ///< at most kMaxOpArity
};

struct SimLatch {
  std::uint32_t in_slot = 0;   ///< combinational driver (D pin)
  std::uint32_t out_slot = 0;  ///< sequential source (Q pin)
  std::uint8_t init = 0;       ///< reset value (unknown/don't-care reset to 0)
};

struct SimProgram {
  static constexpr std::uint32_t kMaxOpArity = 6;

  enum class SlotKind : std::uint8_t {
    kConst0,
    kInput,
    kParam,
    kLatchOut,
    kLogic,
  };

  std::vector<SimOp> ops;                  ///< bucketed by level, ascending
  std::vector<std::uint32_t> fanins;       ///< flat fanin arena (slot ids)
  std::vector<std::uint32_t> level_begin;  ///< ops of level l:
                                           ///< [level_begin[l], level_begin[l+1])
  std::size_t num_slots = 0;         ///< design slots + cascade temporaries
  std::size_t num_design_nodes = 0;  ///< slots [0, n) == design node ids

  std::vector<SlotKind> node_kind;        ///< per design node id
  std::vector<std::uint32_t> op_of_node;  ///< design id -> op computing it
                                          ///< (kNoOp for sources)
  std::vector<std::uint32_t> inputs;      ///< design ids, declaration order
  std::vector<std::uint32_t> params;
  std::vector<std::uint32_t> outputs;
  std::vector<SimLatch> latches;

  std::size_t num_levels() const {
    return level_begin.empty() ? 0 : level_begin.size() - 1;
  }
};

SimProgram lower_program(const netlist::Netlist& nl);
SimProgram lower_program(const map::MappedNetlist& mn);

}  // namespace fpgadbg::sim
