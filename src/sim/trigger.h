// Trigger engine: decides when trace capture should stop.
//
// Commercial logic analyzer IP ("trigger monitors" in the paper's related
// work) matches the observed sample against a condition each cycle; after
// the trigger fires, capture continues for a programmable post-trigger count
// and then freezes.  Conditions are per-bit {0, 1, X (don't care), R (rising
// edge), F (falling edge)}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bitvec.h"

namespace fpgadbg::sim {

enum class BitCond : std::uint8_t { kDontCare, kLow, kHigh, kRising, kFalling };

class Trigger {
 public:
  /// Condition string over the observed window, one char per bit:
  /// 'x'/'-', '0', '1', 'r', 'f'.
  explicit Trigger(const std::string& condition,
                   std::uint64_t post_trigger_cycles = 0);

  std::size_t width() const { return conds_.size(); }

  /// Feed one sample; returns true while capture should continue.
  /// After the trigger condition matches, `post_trigger_cycles` further
  /// samples are accepted, then observe() returns false.
  bool observe(const BitVec& sample);

  bool fired() const { return fired_; }
  /// Cycle index (0-based sample count) at which the condition matched.
  std::uint64_t fire_cycle() const { return fire_cycle_; }

  void reset();

 private:
  bool matches(const BitVec& sample) const;

  std::vector<BitCond> conds_;
  std::uint64_t post_ = 0;
  bool fired_ = false;
  std::uint64_t fire_cycle_ = 0;
  std::uint64_t seen_ = 0;
  std::uint64_t remaining_post_ = 0;
  BitVec prev_;
  bool have_prev_ = false;
};

/// Multi-stage trigger sequencer: fires only after its stages match in
/// order (each stage is a Trigger condition string), like the cascaded
/// trigger state machines of commercial logic-analyzer IP.  Capture stops
/// `post_trigger_cycles` samples after the final stage matches.
class TriggerSequence {
 public:
  TriggerSequence(const std::vector<std::string>& stage_conditions,
                  std::uint64_t post_trigger_cycles = 0);

  std::size_t num_stages() const { return stages_.size(); }
  std::size_t current_stage() const { return current_; }
  bool fired() const { return fired_; }
  std::uint64_t fire_cycle() const { return fire_cycle_; }

  /// Feed one sample; returns true while capture should continue.
  bool observe(const BitVec& sample);

  void reset();

 private:
  std::vector<Trigger> stages_;
  std::uint64_t post_ = 0;
  std::size_t current_ = 0;
  bool fired_ = false;
  std::uint64_t fire_cycle_ = 0;
  std::uint64_t seen_ = 0;
  std::uint64_t remaining_post_ = 0;
};

}  // namespace fpgadbg::sim
