// Trace buffer model: embedded-memory capture of observed signals.
//
// FPGA debugging instruments route selected internal signals into block-RAM
// trace buffers that record a sliding window of W signals x D cycles.  This
// model mirrors that: capture() stores one W-bit sample per cycle into a
// circular buffer; after a trigger fires the window can be frozen and read
// back, exactly like ChipScope/SignalTap readback.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitvec.h"
#include "support/error.h"

namespace fpgadbg::sim {

class TraceBuffer {
 public:
  TraceBuffer(std::size_t width, std::size_t depth);

  std::size_t width() const { return width_; }
  std::size_t depth() const { return depth_; }

  /// Record one sample (sample.size() == width).  Oldest data is
  /// overwritten once the buffer is full.
  void capture(const BitVec& sample);

  /// Number of valid samples currently stored (<= depth).
  std::size_t samples_stored() const;

  /// Sample `age` cycles back from the newest (age 0 = newest).
  const BitVec& sample_back(std::size_t age) const;

  /// Oldest-to-newest readback of everything stored.
  std::vector<BitVec> read_window() const;

  /// Zero-copy readback: invokes `visit(sample)` for every stored sample,
  /// oldest to newest, referencing the ring storage directly — no BitVec is
  /// copied.  The references are invalidated by the next capture()/clear().
  template <typename Visitor>
  void for_each_sample(Visitor&& visit) const {
    const std::size_t n = samples_stored();
    for (std::size_t i = n; i-- > 0;) {
      visit(static_cast<const BitVec&>(sample_back(i)));
    }
  }

  void clear();

  /// Total captures since construction/clear (may exceed depth).
  std::uint64_t total_captures() const { return total_; }

 private:
  std::size_t width_;
  std::size_t depth_;
  std::vector<BitVec> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace fpgadbg::sim
