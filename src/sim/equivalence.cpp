#include "sim/equivalence.h"

#include <sstream>

#include "sim/mapped_simulator.h"
#include "sim/simulator.h"
#include "support/error.h"

namespace fpgadbg::sim {

namespace {

/// Drives two simulators with identical stimulus and compares outputs.
/// SimB must expose the same set_input/set_param/step/output interface.
template <typename SimA, typename SimB, typename NamesA>
EquivalenceReport run_lockstep(SimA& sa, SimB& sb, const NamesA& input_names,
                               const NamesA& param_names,
                               const std::vector<std::string>& out_names,
                               std::uint64_t vectors, Rng& rng) {
  EquivalenceReport report;
  // Parameters change rarely; re-randomize them every 16 vectors.
  std::vector<bool> params(param_names.size(), false);
  for (std::uint64_t v = 0; v < vectors; ++v) {
    if (v % 16 == 0) {
      for (std::size_t p = 0; p < params.size(); ++p) {
        params[p] = rng.next_bool();
        sa.set_param_by_name(param_names[p], params[p]);
        sb.set_param_by_name(param_names[p], params[p]);
      }
    }
    for (const auto& name : input_names) {
      const bool bit = rng.next_bool();
      sa.set_input_by_name(name, bit);
      sb.set_input_by_name(name, bit);
    }
    sa.sim.step();
    sb.sim.step();
    const auto oa = sa.sim.output_values();
    const auto ob = sb.sim.output_values();
    for (std::size_t i = 0; i < oa.size(); ++i) {
      if (oa[i] != ob[i]) {
        report.equivalent = false;
        std::ostringstream os;
        os << "output '" << out_names[i] << "' differs at vector " << v
           << ": " << oa[i] << " vs " << ob[i];
        report.first_mismatch = os.str();
        report.vectors_checked = v + 1;
        return report;
      }
    }
  }
  report.vectors_checked = vectors;
  return report;
}

struct NetlistDriver {
  explicit NetlistDriver(const netlist::Netlist& nl) : sim(nl) {}
  void set_input_by_name(const std::string& name, bool v) {
    sim.set_input(name, v);
  }
  void set_param_by_name(const std::string& name, bool v) {
    const auto id = sim.netlist().find(name);
    FPGADBG_REQUIRE(id.has_value(), "unknown param: " + name);
    sim.set_param(*id, v);
  }
  NetlistSimulator sim;
};

struct MappedDriver {
  explicit MappedDriver(const map::MappedNetlist& mn) : sim(mn) {}
  void set_input_by_name(const std::string& name, bool v) {
    sim.set_input(name, v);
  }
  void set_param_by_name(const std::string& name, bool v) {
    const auto id = sim.netlist().find(name);
    FPGADBG_REQUIRE(id.has_value(), "unknown param: " + name);
    sim.set_param(*id, v);
  }
  MappedSimulator sim;
};

std::vector<std::string> names_of(const netlist::Netlist& nl,
                                  const std::vector<netlist::NodeId>& ids) {
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (auto id : ids) names.push_back(nl.name(id));
  return names;
}

}  // namespace

EquivalenceReport check_equivalence(const netlist::Netlist& a,
                                    const netlist::Netlist& b,
                                    std::uint64_t vectors, Rng& rng) {
  FPGADBG_REQUIRE(a.outputs().size() == b.outputs().size(),
                  "output count mismatch");
  NetlistDriver da(a);
  NetlistDriver db(b);
  return run_lockstep(da, db, names_of(a, a.inputs()), names_of(a, a.params()),
                      a.output_names(), vectors, rng);
}

EquivalenceReport check_equivalence(const netlist::Netlist& a,
                                    const map::MappedNetlist& b,
                                    std::uint64_t vectors, Rng& rng) {
  FPGADBG_REQUIRE(a.outputs().size() == b.outputs().size(),
                  "output count mismatch");
  NetlistDriver da(a);
  MappedDriver db(b);
  return run_lockstep(da, db, names_of(a, a.inputs()), names_of(a, a.params()),
                      a.output_names(), vectors, rng);
}

}  // namespace fpgadbg::sim
