#include "sim/equivalence.h"

#include <bit>
#include <sstream>

#include "sim/compiled_simulator.h"
#include "sim/mapped_simulator.h"
#include "sim/simulator.h"
#include "support/error.h"

namespace fpgadbg::sim {

namespace {

/// Drives two simulators with identical stimulus and compares outputs.
/// SimB must expose the same set_input/set_param/step/output interface.
template <typename SimA, typename SimB, typename NamesA>
EquivalenceReport run_lockstep(SimA& sa, SimB& sb, const NamesA& input_names,
                               const NamesA& param_names,
                               const std::vector<std::string>& out_names,
                               std::uint64_t vectors, Rng& rng) {
  EquivalenceReport report;
  // Parameters change rarely; re-randomize them every 16 vectors.
  std::vector<bool> params(param_names.size(), false);
  for (std::uint64_t v = 0; v < vectors; ++v) {
    if (v % 16 == 0) {
      for (std::size_t p = 0; p < params.size(); ++p) {
        params[p] = rng.next_bool();
        sa.set_param_by_name(param_names[p], params[p]);
        sb.set_param_by_name(param_names[p], params[p]);
      }
    }
    for (const auto& name : input_names) {
      const bool bit = rng.next_bool();
      sa.set_input_by_name(name, bit);
      sb.set_input_by_name(name, bit);
    }
    sa.sim.step();
    sb.sim.step();
    const auto oa = sa.sim.output_values();
    const auto ob = sb.sim.output_values();
    for (std::size_t i = 0; i < oa.size(); ++i) {
      if (oa[i] != ob[i]) {
        report.equivalent = false;
        std::ostringstream os;
        os << "output '" << out_names[i] << "' differs at vector " << v
           << ": " << oa[i] << " vs " << ob[i];
        report.first_mismatch = os.str();
        report.vectors_checked = v + 1;
        return report;
      }
    }
  }
  report.vectors_checked = vectors;
  return report;
}

/// Word-parallel lockstep on the compiled engine: 64 independent sequential
/// streams advance per step, so the requested vector count costs
/// ceil(vectors / 64) evaluation sweeps on each side.
template <typename DrvA, typename DrvB>
EquivalenceReport run_lockstep_words(DrvA& sa, DrvB& sb,
                                     const std::vector<std::string>& input_names,
                                     const std::vector<std::string>& param_names,
                                     const std::vector<std::string>& out_names,
                                     std::uint64_t vectors, Rng& rng) {
  EquivalenceReport report;
  const std::uint64_t steps = (vectors + 63) / 64;
  for (std::uint64_t s = 0; s < steps; ++s) {
    // Parameters are quasi-static per stream; re-randomize them every 16
    // steps (the scalar path's every-16-vectors cadence, per lane).
    if (s % 16 == 0) {
      for (const auto& name : param_names) {
        const std::uint64_t word = rng.next_u64();
        sa.set_param_word_by_name(name, word);
        sb.set_param_word_by_name(name, word);
      }
    }
    for (const auto& name : input_names) {
      const std::uint64_t word = rng.next_u64();
      sa.set_input_word_by_name(name, word);
      sb.set_input_word_by_name(name, word);
    }
    sa.sim.step();
    sb.sim.step();
    for (std::size_t i = 0; i < out_names.size(); ++i) {
      const std::uint64_t wa = sa.sim.output_word(i);
      const std::uint64_t wb = sb.sim.output_word(i);
      if (wa != wb) {
        const int lane = std::countr_zero(wa ^ wb);
        report.equivalent = false;
        std::ostringstream os;
        os << "output '" << out_names[i] << "' differs at step " << s
           << " lane " << lane << ": " << ((wa >> lane) & 1) << " vs "
           << ((wb >> lane) & 1);
        report.first_mismatch = os.str();
        report.vectors_checked = s * 64 + 64;
        return report;
      }
    }
  }
  report.vectors_checked = steps * 64;
  return report;
}

struct NetlistDriver {
  explicit NetlistDriver(const netlist::Netlist& nl) : sim(nl) {}
  void set_input_by_name(const std::string& name, bool v) {
    sim.set_input(name, v);
  }
  void set_param_by_name(const std::string& name, bool v) {
    const auto id = sim.netlist().find(name);
    FPGADBG_REQUIRE(id.has_value(), "unknown param: " + name);
    sim.set_param(*id, v);
  }
  NetlistSimulator sim;
};

struct MappedDriver {
  explicit MappedDriver(const map::MappedNetlist& mn)
      : sim(mn, SimBackend::kInterpreted) {}
  void set_input_by_name(const std::string& name, bool v) {
    sim.set_input(name, v);
  }
  void set_param_by_name(const std::string& name, bool v) {
    const auto id = sim.netlist().find(name);
    FPGADBG_REQUIRE(id.has_value(), "unknown param: " + name);
    sim.set_param(*id, v);
  }
  MappedSimulator sim;
};

struct CompiledNetlistDriver {
  explicit CompiledNetlistDriver(const netlist::Netlist& netlist)
      : nl(&netlist), sim(netlist) {}
  void set_input_word_by_name(const std::string& name, std::uint64_t w) {
    const auto id = nl->find(name);
    FPGADBG_REQUIRE(id.has_value(), "unknown input: " + name);
    sim.set_input_word(*id, w);
  }
  void set_param_word_by_name(const std::string& name, std::uint64_t w) {
    const auto id = nl->find(name);
    FPGADBG_REQUIRE(id.has_value(), "unknown param: " + name);
    sim.set_param_word(*id, w);
  }
  const netlist::Netlist* nl;
  CompiledSimulator sim;
};

struct CompiledMappedDriver {
  explicit CompiledMappedDriver(const map::MappedNetlist& mapped)
      : mn(&mapped), sim(mapped) {}
  void set_input_word_by_name(const std::string& name, std::uint64_t w) {
    const auto id = mn->find(name);
    FPGADBG_REQUIRE(id.has_value(), "unknown input: " + name);
    sim.set_input_word(*id, w);
  }
  void set_param_word_by_name(const std::string& name, std::uint64_t w) {
    const auto id = mn->find(name);
    FPGADBG_REQUIRE(id.has_value(), "unknown param: " + name);
    sim.set_param_word(*id, w);
  }
  const map::MappedNetlist* mn;
  CompiledSimulator sim;
};

std::vector<std::string> names_of(const netlist::Netlist& nl,
                                  const std::vector<netlist::NodeId>& ids) {
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (auto id : ids) names.push_back(nl.name(id));
  return names;
}

}  // namespace

EquivalenceReport check_equivalence(const netlist::Netlist& a,
                                    const netlist::Netlist& b,
                                    std::uint64_t vectors, Rng& rng,
                                    SimBackend backend) {
  FPGADBG_REQUIRE(a.outputs().size() == b.outputs().size(),
                  "output count mismatch");
  if (backend == SimBackend::kCompiled) {
    CompiledNetlistDriver da(a);
    CompiledNetlistDriver db(b);
    return run_lockstep_words(da, db, names_of(a, a.inputs()),
                              names_of(a, a.params()), a.output_names(),
                              vectors, rng);
  }
  NetlistDriver da(a);
  NetlistDriver db(b);
  return run_lockstep(da, db, names_of(a, a.inputs()), names_of(a, a.params()),
                      a.output_names(), vectors, rng);
}

EquivalenceReport check_equivalence(const netlist::Netlist& a,
                                    const map::MappedNetlist& b,
                                    std::uint64_t vectors, Rng& rng,
                                    SimBackend backend) {
  FPGADBG_REQUIRE(a.outputs().size() == b.outputs().size(),
                  "output count mismatch");
  if (backend == SimBackend::kCompiled) {
    CompiledNetlistDriver da(a);
    CompiledMappedDriver db(b);
    return run_lockstep_words(da, db, names_of(a, a.inputs()),
                              names_of(a, a.params()), a.output_names(),
                              vectors, rng);
  }
  NetlistDriver da(a);
  MappedDriver db(b);
  return run_lockstep(da, db, names_of(a, a.inputs()), names_of(a, a.params()),
                      a.output_names(), vectors, rng);
}

}  // namespace fpgadbg::sim
