// Random-simulation equivalence checking between flow stages.
//
// Synthesis and mapping must preserve function; these helpers drive both
// representations with the same random input/parameter streams and compare
// primary outputs cycle by cycle.  Signals are matched by name, so the
// netlists must share input/param/output naming (all our passes preserve
// names).
//
// Backend selection: with SimBackend::kCompiled (the default) both designs
// run on the compiled engine in word-parallel mode — 64 independent
// sequential stimulus streams advance per step, so `vectors` random vectors
// cost ceil(vectors / 64) evaluation sweeps.  kInterpreted retains the
// original one-vector-at-a-time interpreters as the oracle path.
#pragma once

#include <string>

#include "map/mapped_netlist.h"
#include "netlist/netlist.h"
#include "sim/sim_backend.h"
#include "support/rng.h"

namespace fpgadbg::sim {

struct EquivalenceReport {
  bool equivalent = true;
  std::uint64_t vectors_checked = 0;
  std::string first_mismatch;  ///< human-readable description, if any
};

/// Compare two netlists over at least `vectors` random stimulus steps
/// (sequential: latches are clocked between vectors).
EquivalenceReport check_equivalence(const netlist::Netlist& a,
                                    const netlist::Netlist& b,
                                    std::uint64_t vectors, Rng& rng,
                                    SimBackend backend);

/// Compare a netlist against its technology-mapped form.
EquivalenceReport check_equivalence(const netlist::Netlist& a,
                                    const map::MappedNetlist& b,
                                    std::uint64_t vectors, Rng& rng,
                                    SimBackend backend);

inline EquivalenceReport check_equivalence(const netlist::Netlist& a,
                                           const netlist::Netlist& b,
                                           std::uint64_t vectors, Rng& rng) {
  return check_equivalence(a, b, vectors, rng, default_sim_backend());
}

inline EquivalenceReport check_equivalence(const netlist::Netlist& a,
                                           const map::MappedNetlist& b,
                                           std::uint64_t vectors, Rng& rng) {
  return check_equivalence(a, b, vectors, rng, default_sim_backend());
}

}  // namespace fpgadbg::sim
