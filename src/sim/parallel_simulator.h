// Bit-sliced (word-parallel) netlist simulation.
//
// Emulation-style verification needs millions of vectors; evaluating one
// vector at a time wastes 63/64 of every machine word.  This simulator packs
// 64 independent stimulus vectors into one 64-bit lane per net and evaluates
// each node once per batch via Shannon-expanded word operations, giving a
// ~20-50x throughput gain over NetlistSimulator (see bench_micro).
// Sequential semantics match NetlistSimulator: all 64 streams step their
// latches in lock-step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace fpgadbg::sim {

class ParallelSimulator {
 public:
  static constexpr std::size_t kLanes = 64;

  explicit ParallelSimulator(const netlist::Netlist& nl);

  const netlist::Netlist& netlist() const { return nl_; }

  /// Reset all 64 streams' latches to their init values.
  void reset();

  /// Set the 64-vector word of an input (bit i = stream i's value).
  void set_input_word(netlist::NodeId id, std::uint64_t word);
  void set_param_word(netlist::NodeId id, std::uint64_t word);

  void eval();
  void step();

  std::uint64_t word(netlist::NodeId id) const { return values_[id]; }
  bool value(netlist::NodeId id, std::size_t lane) const {
    return (values_[id] >> lane) & 1;
  }
  std::uint64_t output_word(std::size_t index) const;

  std::uint64_t cycle() const { return cycle_; }

 private:
  const netlist::Netlist& nl_;
  std::vector<netlist::NodeId> topo_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> latch_state_;
  std::uint64_t cycle_ = 0;
};

}  // namespace fpgadbg::sim
