#include "sim/sim_program.h"

#include <algorithm>

#include "support/error.h"

namespace fpgadbg::sim {

namespace {

using logic::TruthTable;

// 2:1 mux over (lo, hi, sel): out = sel ? hi : lo.
constexpr std::uint64_t kMuxMask = 0xCA;

/// Accumulates ops with their levels; ops are bucket-sorted by level once
/// all nodes are lowered.
struct Builder {
  SimProgram prog;
  std::vector<std::uint32_t> slot_level;  // per slot, sources at 0
  std::vector<std::uint32_t> op_level;    // parallel to prog.ops

  std::uint32_t new_temp_slot() {
    const auto slot = static_cast<std::uint32_t>(prog.num_slots++);
    slot_level.push_back(0);
    return slot;
  }

  /// Emits one flat op writing `out`; returns `out`.
  std::uint32_t emit(std::uint64_t mask, const std::uint32_t* fanin_slots,
                     std::uint32_t fanin_count, std::uint32_t out) {
    SimOp op;
    op.mask = mask;
    op.out = out;
    op.fanin_begin = static_cast<std::uint32_t>(prog.fanins.size());
    op.fanin_count = fanin_count;
    std::uint32_t level = 0;
    for (std::uint32_t j = 0; j < fanin_count; ++j) {
      prog.fanins.push_back(fanin_slots[j]);
      level = std::max(level, slot_level[fanin_slots[j]]);
    }
    slot_level[out] = level + 1;
    prog.ops.push_back(op);
    op_level.push_back(level + 1);
    return out;
  }

  /// Lowers `tt` restricted to its first `arity` variables over
  /// `fanin_slots[0..arity)`.  Functions wider than kMaxOpArity are Shannon-
  /// split on their top variable into a LUT6 cascade with a mux op on top.
  std::uint32_t lower_function(const TruthTable& tt,
                               const std::vector<std::uint32_t>& fanin_slots,
                               std::uint32_t arity, std::uint32_t out) {
    if (arity <= SimProgram::kMaxOpArity) {
      // After cofactoring, tt depends only on variables [0, arity); word 0
      // of the table is exactly the mask over those variables.
      const std::uint64_t mask =
          tt.num_vars() == 0 ? (tt.bit(0) ? 1 : 0) : tt.words()[0];
      return emit(mask, fanin_slots.data(), arity, out);
    }
    const int split = static_cast<int>(arity) - 1;
    const std::uint32_t lo =
        lower_function(tt.cofactor0(split), fanin_slots, arity - 1,
                       new_temp_slot());
    const std::uint32_t hi =
        lower_function(tt.cofactor1(split), fanin_slots, arity - 1,
                       new_temp_slot());
    const std::uint32_t mux_fanins[3] = {lo, hi,
                                         fanin_slots[static_cast<std::size_t>(split)]};
    return emit(kMuxMask, mux_fanins, 3, out);
  }

  /// Bucket-sorts ops by level and fills level_begin.
  void finish() {
    std::uint32_t max_level = 0;
    for (std::uint32_t l : op_level) max_level = std::max(max_level, l);
    // Counting sort: level l ops land in [level_begin[l], level_begin[l+1]).
    // Level 0 holds no ops (sources are not ops), so bucket by level - 1.
    std::vector<std::uint32_t> count(max_level + 1, 0);
    for (std::uint32_t l : op_level) ++count[l];
    std::vector<std::uint32_t> begin(max_level + 2, 0);
    for (std::uint32_t l = 1; l <= max_level; ++l) {
      begin[l + 1] = begin[l] + count[l];
    }
    prog.level_begin.assign(begin.begin() + 1, begin.end());
    std::vector<SimOp> sorted(prog.ops.size());
    std::vector<std::uint32_t> cursor(begin.begin() + 1, begin.end());
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
      sorted[cursor[op_level[i] - 1]++] = prog.ops[i];
    }
    prog.ops = std::move(sorted);
    // Re-derive op_of_node from the sorted order.
    std::fill(prog.op_of_node.begin(), prog.op_of_node.end(), kNoOp);
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
      if (prog.ops[i].out < prog.num_design_nodes) {
        prog.op_of_node[prog.ops[i].out] = static_cast<std::uint32_t>(i);
      }
    }
  }
};

}  // namespace

SimProgram lower_program(const netlist::Netlist& nl) {
  using netlist::NodeKind;
  Builder b;
  b.prog.num_slots = nl.num_nodes();
  b.prog.num_design_nodes = nl.num_nodes();
  b.slot_level.assign(nl.num_nodes(), 0);
  b.prog.node_kind.resize(nl.num_nodes());
  b.prog.op_of_node.assign(nl.num_nodes(), kNoOp);
  for (netlist::NodeId id = 0; id < nl.num_nodes(); ++id) {
    switch (nl.kind(id)) {
      case NodeKind::kConst0:
        b.prog.node_kind[id] = SimProgram::SlotKind::kConst0;
        break;
      case NodeKind::kInput:
        b.prog.node_kind[id] = SimProgram::SlotKind::kInput;
        break;
      case NodeKind::kParam:
        b.prog.node_kind[id] = SimProgram::SlotKind::kParam;
        break;
      case NodeKind::kLatchOut:
        b.prog.node_kind[id] = SimProgram::SlotKind::kLatchOut;
        break;
      case NodeKind::kLogic:
        b.prog.node_kind[id] = SimProgram::SlotKind::kLogic;
        break;
    }
  }
  b.prog.inputs = nl.inputs();
  b.prog.params = nl.params();
  b.prog.outputs = nl.outputs();
  for (const auto& latch : nl.latches()) {
    b.prog.latches.push_back(SimLatch{
        latch.input, latch.output,
        static_cast<std::uint8_t>(latch.init_value == 1 ? 1 : 0)});
  }
  std::vector<std::uint32_t> fanin_slots;
  for (netlist::NodeId id : nl.topo_order()) {
    const auto& node = nl.node(id);
    fanin_slots.assign(node.fanins.begin(), node.fanins.end());
    b.lower_function(node.function, fanin_slots,
                     static_cast<std::uint32_t>(fanin_slots.size()), id);
  }
  b.finish();
  return std::move(b.prog);
}

SimProgram lower_program(const map::MappedNetlist& mn) {
  using map::MKind;
  Builder b;
  b.prog.num_slots = mn.num_cells();
  b.prog.num_design_nodes = mn.num_cells();
  b.slot_level.assign(mn.num_cells(), 0);
  b.prog.node_kind.resize(mn.num_cells());
  b.prog.op_of_node.assign(mn.num_cells(), kNoOp);
  for (map::CellId id = 0; id < mn.num_cells(); ++id) {
    switch (mn.cell(id).kind) {
      case MKind::kConst0:
        b.prog.node_kind[id] = SimProgram::SlotKind::kConst0;
        break;
      case MKind::kInput:
        b.prog.node_kind[id] = SimProgram::SlotKind::kInput;
        break;
      case MKind::kParam:
        b.prog.node_kind[id] = SimProgram::SlotKind::kParam;
        break;
      case MKind::kLatchOut:
        b.prog.node_kind[id] = SimProgram::SlotKind::kLatchOut;
        break;
      case MKind::kLut:
      case MKind::kTlut:
      case MKind::kTcon:
        b.prog.node_kind[id] = SimProgram::SlotKind::kLogic;
        break;
    }
  }
  b.prog.inputs = mn.inputs();
  b.prog.params = mn.params();
  b.prog.outputs = mn.outputs();
  for (const auto& latch : mn.latches()) {
    b.prog.latches.push_back(SimLatch{
        latch.input, latch.output,
        static_cast<std::uint8_t>(latch.init_value == 1 ? 1 : 0)});
  }
  std::vector<std::uint32_t> fanin_slots;
  for (map::CellId id : mn.topo_order()) {
    const auto& cell = mn.cell(id);
    fanin_slots.assign(cell.data_inputs.begin(), cell.data_inputs.end());
    fanin_slots.insert(fanin_slots.end(), cell.param_inputs.begin(),
                       cell.param_inputs.end());
    b.lower_function(cell.function, fanin_slots,
                     static_cast<std::uint32_t>(fanin_slots.size()), id);
  }
  b.finish();
  return std::move(b.prog);
}

}  // namespace fpgadbg::sim
