// Functional simulation of a technology-mapped netlist.
//
// Evaluates LUTs, TLUTs and TCONs exactly as configured hardware would:
// parameter inputs are quasi-static values that change only between
// debugging turns, data inputs toggle every cycle.
//
// Two engines sit behind the same API, selected by SimBackend: the original
// per-cell interpreter (the oracle) and the compiled levelized engine
// (CompiledSimulator), which lowers the mapped netlist once at construction
// and is the default.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "map/mapped_netlist.h"
#include "sim/compiled_simulator.h"
#include "sim/sim_backend.h"

namespace fpgadbg::sim {

class MappedSimulator {
 public:
  explicit MappedSimulator(const map::MappedNetlist& mn,
                           SimBackend backend = default_sim_backend());

  const map::MappedNetlist& netlist() const { return mn_; }
  SimBackend backend() const { return backend_; }

  void reset();
  void set_input(map::CellId id, bool value);
  void set_input(const std::string& name, bool value);
  void set_inputs(const std::vector<bool>& values);
  void set_param(map::CellId id, bool value);
  void set_params(const std::vector<bool>& values);

  void eval();
  void step();

  bool value(map::CellId id) const {
    return engine_ ? engine_->value(id) : values_[id] != 0;
  }
  bool output(std::size_t index) const;
  std::vector<bool> output_values() const;

  std::uint64_t cycle() const { return engine_ ? engine_->cycle() : cycle_; }

  /// Sequential state snapshot (latch contents + cycle counter).  Emulators
  /// support state readback/restore so a debug run can rewind to just before
  /// a trigger and re-run with different observation parameters.
  struct Snapshot {
    std::vector<std::uint8_t> latch_state;
    std::uint64_t cycle = 0;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& snapshot);

 private:
  const map::MappedNetlist& mn_;
  SimBackend backend_;
  /// Compiled path (engaged when backend_ == kCompiled).
  std::optional<CompiledSimulator> engine_;
  /// Interpreter path state (kInterpreted only).
  std::vector<map::CellId> topo_;
  std::vector<std::uint8_t> values_;
  std::vector<std::uint8_t> latch_state_;
  std::uint64_t cycle_ = 0;
};

}  // namespace fpgadbg::sim
