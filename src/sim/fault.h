// Fault models for emulation-time bug hunting.
//
// The paper's debug loop exists to localize functional errors "inadvertently
// introduced at the RTL stage".  We model them as net-level faults injected
// into the golden netlist: stuck-at values, output inversions, and
// intermittent bit-flips that fire on chosen cycles.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace fpgadbg::sim {

enum class FaultType : std::uint8_t {
  kStuckAt0,
  kStuckAt1,
  kInvert,          ///< permanent output inversion (wrong-gate model)
  kFlipOnCycle,     ///< single-cycle transient on `cycle`
};

struct Fault {
  netlist::NodeId node = netlist::kNullNode;
  FaultType type = FaultType::kStuckAt0;
  std::uint64_t cycle = 0;  ///< only for kFlipOnCycle

  bool active_at(std::uint64_t now) const {
    return type != FaultType::kFlipOnCycle || cycle == now;
  }
  bool apply(bool value, std::uint64_t now) const {
    switch (type) {
      case FaultType::kStuckAt0:
        return false;
      case FaultType::kStuckAt1:
        return true;
      case FaultType::kInvert:
        return !value;
      case FaultType::kFlipOnCycle:
        return cycle == now ? !value : value;
    }
    return value;
  }
};

std::string to_string(FaultType type);

}  // namespace fpgadbg::sim
