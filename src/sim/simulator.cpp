#include "sim/simulator.h"

#include <algorithm>

#include "support/error.h"

namespace fpgadbg::sim {

using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;

NetlistSimulator::NetlistSimulator(const Netlist& nl)
    : nl_(nl), topo_(nl.topo_order()), values_(nl.num_nodes(), 0) {
  latch_state_.resize(nl.latches().size(), 0);
  fault_mask_.resize(nl.num_nodes(), 0);
  reset();
}

void NetlistSimulator::reset() {
  cycle_ = 0;
  for (std::size_t i = 0; i < nl_.latches().size(); ++i) {
    latch_state_[i] = nl_.latches()[i].init_value == 1 ? 1 : 0;
  }
  for (std::size_t i = 0; i < nl_.latches().size(); ++i) {
    values_[nl_.latches()[i].output] = latch_state_[i];
  }
}

void NetlistSimulator::set_input(NodeId id, bool value) {
  FPGADBG_REQUIRE(nl_.kind(id) == NodeKind::kInput,
                  "set_input target is not an input");
  values_[id] = value ? 1 : 0;
}

void NetlistSimulator::set_input(const std::string& name, bool value) {
  const auto id = nl_.find(name);
  FPGADBG_REQUIRE(id.has_value(), "unknown input: " + name);
  set_input(*id, value);
}

void NetlistSimulator::set_inputs(const std::vector<bool>& values) {
  FPGADBG_REQUIRE(values.size() == nl_.inputs().size(),
                  "set_inputs size mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    values_[nl_.inputs()[i]] = values[i] ? 1 : 0;
  }
}

void NetlistSimulator::set_param(NodeId id, bool value) {
  FPGADBG_REQUIRE(nl_.kind(id) == NodeKind::kParam,
                  "set_param target is not a parameter");
  values_[id] = value ? 1 : 0;
}

void NetlistSimulator::set_params(const std::vector<bool>& values) {
  FPGADBG_REQUIRE(values.size() == nl_.params().size(),
                  "set_params size mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    values_[nl_.params()[i]] = values[i] ? 1 : 0;
  }
}

void NetlistSimulator::eval() {
  for (std::size_t i = 0; i < nl_.latches().size(); ++i) {
    values_[nl_.latches()[i].output] = latch_state_[i];
  }
  const bool have_faults = !faults_.empty();
  for (NodeId id : topo_) {
    const auto& node = nl_.node(id);
    std::uint64_t assignment = 0;
    for (std::size_t v = 0; v < node.fanins.size(); ++v) {
      if (values_[node.fanins[v]]) assignment |= 1ULL << v;
    }
    values_[id] = node.function.evaluate(assignment) ? 1 : 0;
    // Faults override computed values in place so downstream logic sees the
    // faulty net, as real silicon would.  The per-node index keeps the scan
    // off the hot path: nodes without faults pay a single flag test.
    if (have_faults && fault_mask_[id]) {
      for (const Fault& f : faults_by_node_.find(id)->second) {
        values_[id] = f.apply(values_[id] != 0, cycle_) ? 1 : 0;
      }
    }
  }
}

void NetlistSimulator::step() {
  eval();
  for (std::size_t i = 0; i < nl_.latches().size(); ++i) {
    latch_state_[i] = values_[nl_.latches()[i].input];
  }
  ++cycle_;
}

bool NetlistSimulator::output(std::size_t index) const {
  FPGADBG_REQUIRE(index < nl_.outputs().size(), "output index out of range");
  return values_[nl_.outputs()[index]] != 0;
}

std::vector<bool> NetlistSimulator::output_values() const {
  std::vector<bool> out;
  out.reserve(nl_.outputs().size());
  for (NodeId id : nl_.outputs()) out.push_back(values_[id] != 0);
  return out;
}

void NetlistSimulator::inject_fault(const Fault& fault) {
  FPGADBG_REQUIRE(fault.node < nl_.num_nodes(), "fault node out of range");
  faults_.push_back(fault);
  faults_by_node_[fault.node].push_back(fault);
  fault_mask_[fault.node] = 1;
}

void NetlistSimulator::clear_faults() {
  faults_.clear();
  faults_by_node_.clear();
  std::fill(fault_mask_.begin(), fault_mask_.end(), 0);
}

}  // namespace fpgadbg::sim
