// Structure-of-arrays batched scenario simulation.
//
// The compiled engine (CompiledSimulator) evaluates exactly one 64-lane
// stimulus word per slot per step; driving "millions of scenarios" through
// it means re-walking the levelized program once per 64 scenarios, paying
// the full op-decode and fanin-indexing overhead every pass.  This engine
// restructures value storage as structure-of-arrays: every SSA slot owns B
// contiguous 64-bit words (one word = one *scenario block* of 64 lanes), so
// a single walk of the SimProgram evaluates B x 64 independent scenarios.
// The per-op inner loop runs over the B blocks of one slot — contiguous
// loads/stores that the compiler vectorizes over the widest ISA available
// (this translation unit is built with -O3 and the host's native vector
// extensions; results are pure bitwise math, so codegen never changes them).
//
// Scenario addressing: scenario s lives in block s / 64, lane s % 64.  The
// mapping is independent of the batch width B and of threading, which is
// what makes runs bit-identical across widths and thread counts.
//
// Faults are per-scenario: each injected fault carries a lane mask per
// block, AND/OR/XOR-ed into the owning op's output words, so one batch can
// mix clean and faulted universes (differential campaigns diff them after
// the fact).  Threaded sweeps shard scenario blocks across a thread pool:
// blocks are embarrassingly parallel, one task walks the whole program for
// its block range, and there are no barriers inside a step.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "map/mapped_netlist.h"
#include "netlist/netlist.h"
#include "sim/fault.h"
#include "sim/sim_program.h"
#include "support/thread_pool.h"

namespace fpgadbg::sim {

struct BatchSimOptions {
  /// Scenario blocks B; the engine simulates B * 64 scenarios per pass.
  std::size_t blocks = 1;
  /// 0 shares ThreadPool::global(); 1 forces serial sweeps; N > 1 builds a
  /// dedicated pool of N workers.  Sharding is by block range, so results
  /// are identical for every setting.
  std::size_t num_threads = 1;
  /// Minimum blocks per task before a sweep is dispatched to the pool.
  std::size_t min_blocks_per_task = 4;
};

/// Marks a fault (or stimulus) as applying to every scenario of the batch.
inline constexpr std::size_t kAllScenarios = static_cast<std::size_t>(-1);

class BatchSimulator {
 public:
  static constexpr std::size_t kLanesPerBlock = 64;
  static constexpr std::uint32_t kSnapshotVersion = 1;

  explicit BatchSimulator(const netlist::Netlist& nl,
                          BatchSimOptions options = {});
  explicit BatchSimulator(const map::MappedNetlist& mn,
                          BatchSimOptions options = {});

  const SimProgram& program() const { return prog_; }
  const BatchSimOptions& options() const { return opts_; }
  std::size_t blocks() const { return blocks_; }
  std::size_t num_scenarios() const { return blocks_ * kLanesPerBlock; }

  /// Reset every scenario's latches to their init values.
  void reset();

  // --- stimulus ----------------------------------------------------------
  // One word drives the 64 lanes of one scenario block; the broadcast forms
  // drive every block at once.  All entry points bounds-check their node id
  // and block index and throw fpgadbg::Error on misuse.
  void set_input_word(std::uint32_t id, std::size_t block, std::uint64_t word);
  void set_param_word(std::uint32_t id, std::size_t block, std::uint64_t word);
  void broadcast_input(std::uint32_t id, bool value);
  void broadcast_param(std::uint32_t id, bool value);

  /// Propagate combinationally across all scenarios (does not clock).
  void eval();
  /// eval() then clock every scenario's latches; one step == one cycle for
  /// all B x 64 scenarios.
  void step();

  // --- value extraction --------------------------------------------------
  /// Zero-copy view of one slot's B contiguous block words.  No gather on
  /// the hot path: consumers index blocks/lanes straight off the SoA arena.
  class BatchView {
   public:
    BatchView(const std::uint64_t* words, std::size_t blocks)
        : words_(words), blocks_(blocks) {}
    const std::uint64_t* data() const { return words_; }
    std::size_t blocks() const { return blocks_; }
    std::uint64_t word(std::size_t block) const { return words_[block]; }
    bool bit(std::size_t scenario) const {
      return (words_[scenario / kLanesPerBlock] >>
              (scenario % kLanesPerBlock)) &
             1;
    }
   private:
    const std::uint64_t* words_;
    std::size_t blocks_;
  };

  BatchView view(std::uint32_t slot) const;
  std::uint64_t word(std::uint32_t id, std::size_t block) const;
  bool value(std::uint32_t id, std::size_t scenario) const;
  BatchView output_view(std::size_t index) const;
  std::uint64_t output_word(std::size_t index, std::size_t block) const;
  bool output_value(std::size_t index, std::size_t scenario) const;

  // --- faults ------------------------------------------------------------
  /// Injects a fault into every scenario (`kAllScenarios`) or exactly one.
  /// Faults on source nodes have no effect (they are never re-evaluated),
  /// matching the CompiledSimulator / NetlistSimulator semantics.
  void inject_fault(const Fault& fault, std::size_t scenario = kAllScenarios);
  /// Fully general form: one lane mask word per block selects the faulted
  /// scenarios.  `mask` must have exactly blocks() entries.
  void inject_fault_masked(const Fault& fault,
                           const std::vector<std::uint64_t>& mask);
  void clear_faults();
  const std::vector<Fault>& faults() const { return faults_; }
  /// Number of scenarios with at least one effective (op-owned) fault.
  std::size_t num_faulted_scenarios() const;

  std::uint64_t cycle() const { return cycle_; }

  /// Sequential state of every scenario.  The version and block count are
  /// part of the snapshot shape: restoring a snapshot taken at a different
  /// batch width (or from an incompatible engine) fails loudly instead of
  /// silently corrupting latch state.
  struct Snapshot {
    std::uint32_t version = kSnapshotVersion;
    std::uint64_t blocks = 0;
    std::vector<std::uint64_t> latch_words;  ///< latch-major: [latch * B + b]
    std::uint64_t cycle = 0;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& snapshot);

 private:
  struct BatchFault {
    Fault fault;
    std::vector<std::uint64_t> mask;  ///< lane mask per block
  };

  void init();
  std::uint64_t* slot_words(std::uint32_t slot) {
    return values_.data() + static_cast<std::size_t>(slot) * blocks_;
  }
  const std::uint64_t* slot_words(std::uint32_t slot) const {
    return values_.data() + static_cast<std::size_t>(slot) * blocks_;
  }
  /// Walks the whole program for blocks [b0, b1); clocks latches when
  /// `clock` is set.  Each concurrent caller owns a disjoint block range.
  void run_blocks(std::size_t b0, std::size_t b1, bool clock);
  /// Runs fn(b0, b1) over disjoint block ranges, through the pool when wide
  /// enough.
  template <typename Fn>
  void for_block_ranges(const Fn& fn);
  void account_fault(const Fault& fault, std::vector<std::uint64_t> mask);

  SimProgram prog_;
  BatchSimOptions opts_;
  std::size_t blocks_ = 1;
  std::unique_ptr<ThreadPool> own_pool_;
  ThreadPool* pool_ = nullptr;  ///< null when sweeps are always serial
  std::vector<std::uint64_t> values_;       ///< SoA arena: [slot * B + block]
  std::vector<std::uint64_t> latch_words_;  ///< [latch * B + block]
  std::unordered_map<std::uint32_t, std::vector<BatchFault>> faults_by_op_;
  std::vector<std::uint8_t> op_has_fault_;
  std::vector<Fault> faults_;
  std::vector<std::uint64_t> faulted_mask_;  ///< union of effective faults
  std::uint64_t cycle_ = 0;
};

}  // namespace fpgadbg::sim
