#include "sim/compiled_simulator.h"

#include <algorithm>

#include "sim/sim_kernels.h"
#include "support/error.h"
#include "support/telemetry.h"

namespace fpgadbg::sim {

using kernels::apply_fault_word;
using kernels::broadcast;
using kernels::eval_op_word;

CompiledSimulator::CompiledSimulator(const netlist::Netlist& nl,
                                     CompiledSimOptions options)
    : prog_(lower_program(nl)), opts_(options) {
  init();
}

CompiledSimulator::CompiledSimulator(const map::MappedNetlist& mn,
                                     CompiledSimOptions options)
    : prog_(lower_program(mn)), opts_(options) {
  init();
}

void CompiledSimulator::init() {
  if (opts_.num_threads == 0) {
    pool_ = &ThreadPool::global();
  } else if (opts_.num_threads > 1) {
    own_pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
    pool_ = own_pool_.get();
  }
  if (pool_ && pool_->size() <= 1) pool_ = nullptr;
  values_.assign(prog_.num_slots, 0);
  latch_words_.resize(prog_.latches.size());
  if (opts_.event_driven) dirty_.assign(prog_.num_slots, 0);
  op_has_fault_.assign(prog_.ops.size(), 0);
  reset();
}

void CompiledSimulator::reset() {
  cycle_ = 0;
  for (std::size_t i = 0; i < prog_.latches.size(); ++i) {
    latch_words_[i] = broadcast(prog_.latches[i].init != 0);
    values_[prog_.latches[i].out_slot] = latch_words_[i];
  }
  full_eval_pending_ = true;
}

void CompiledSimulator::set_source_word(std::uint32_t slot,
                                        std::uint64_t word) {
  if (word != 0 && word != ~0ULL) uniform_ = false;
  if (opts_.event_driven && values_[slot] != word) dirty_[slot] = 1;
  values_[slot] = word;
}

void CompiledSimulator::set_input(std::uint32_t id, bool value) {
  set_input_word(id, broadcast(value));
}

void CompiledSimulator::set_inputs(const std::vector<bool>& values) {
  FPGADBG_REQUIRE(values.size() == prog_.inputs.size(),
                  "set_inputs size mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    set_source_word(prog_.inputs[i], broadcast(values[i]));
  }
}

void CompiledSimulator::set_param(std::uint32_t id, bool value) {
  set_param_word(id, broadcast(value));
}

void CompiledSimulator::set_params(const std::vector<bool>& values) {
  FPGADBG_REQUIRE(values.size() == prog_.params.size(),
                  "set_params size mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    set_source_word(prog_.params[i], broadcast(values[i]));
  }
}

void CompiledSimulator::set_input_word(std::uint32_t id, std::uint64_t word) {
  FPGADBG_REQUIRE(id < prog_.num_design_nodes &&
                      prog_.node_kind[id] == SimProgram::SlotKind::kInput,
                  "set_input target is not an input");
  set_source_word(id, word);
}

void CompiledSimulator::set_param_word(std::uint32_t id, std::uint64_t word) {
  FPGADBG_REQUIRE(id < prog_.num_design_nodes &&
                      prog_.node_kind[id] == SimProgram::SlotKind::kParam,
                  "set_param target is not a parameter");
  set_source_word(id, word);
}

void CompiledSimulator::run_ops(std::size_t begin, std::size_t end,
                                bool full) {
  const SimOp* ops = prog_.ops.data();
  const std::uint32_t* arena = prog_.fanins.data();
  std::uint64_t* vals = values_.data();
  const bool event = opts_.event_driven;
  const bool uniform = uniform_;
  std::uint8_t* dirty = event ? dirty_.data() : nullptr;
  const std::uint8_t* op_fault = op_has_fault_.data();
  const bool have_faults = !faults_by_op_.empty();
  std::uint64_t skipped = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const SimOp& op = ops[i];
    const std::uint32_t* f = arena + op.fanin_begin;
    const std::uint32_t k = op.fanin_count;
    const bool faulted = have_faults && op_fault[i];
    if (event && !full && !faulted) {
      std::uint8_t any = 0;
      for (std::uint32_t j = 0; j < k; ++j) any |= dirty[f[j]];
      if (!any) {
        dirty[op.out] = 0;
        ++skipped;
        continue;
      }
    }
    std::uint64_t r;
    if (uniform) {
      // Broadcast fast path: every lane agrees, so one mask lookup via the
      // fanin bit pattern replaces the full Shannon walk (the scalar
      // debug-session workload never leaves this path).
      std::uint32_t idx = 0;
      for (std::uint32_t j = 0; j < k; ++j) {
        idx |= static_cast<std::uint32_t>(vals[f[j]] & 1) << j;
      }
      r = broadcast((op.mask >> idx) & 1);
    } else {
      std::uint64_t w[SimProgram::kMaxOpArity];
      for (std::uint32_t j = 0; j < k; ++j) w[j] = vals[f[j]];
      r = eval_op_word(op.mask, k, w);
    }
    if (faulted) {
      for (const Fault& fl : faults_by_op_.find(static_cast<std::uint32_t>(i))
                                 ->second) {
        r = apply_fault_word(fl, r, cycle_);
      }
    }
    if (event) {
      dirty[op.out] = vals[op.out] != r;
      vals[op.out] = r;
    } else {
      vals[op.out] = r;
    }
  }
  if (skipped != 0) {
    // One relaxed add per chunk; the per-op loop stays atomic-free.
    static telemetry::Counter& skip_counter =
        telemetry::metrics().counter("sim.ops_skipped");
    skip_counter.add(skipped);
  }
}

void CompiledSimulator::sweep_level(std::size_t begin, std::size_t end,
                                    bool full) {
  telemetry::TraceScope span("sim.level_sweep", "sim");
  const std::size_t width = end - begin;
  if (pool_ != nullptr && width >= opts_.parallel_min_level_width) {
    static telemetry::Counter& parallel_sweeps =
        telemetry::metrics().counter("sim.parallel_sweeps");
    parallel_sweeps.add(1);
    // Chunked dispatch: ops only read slots written by strictly lower
    // levels plus their own output slot, so chunks never race.
    const std::size_t chunks = std::min(width, pool_->size() * 4);
    const std::size_t chunk = (width + chunks - 1) / chunks;
    pool_->parallel_for(chunks, [&](std::size_t c) {
      // Parent-links to sim.level_sweep via the pool's context capture;
      // "sim" category keeps it off the hot path outside full tracing.
      telemetry::TraceScope chunk_span("sim.level_chunk", "sim");
      const std::size_t b = begin + c * chunk;
      run_ops(b, std::min(end, b + chunk), full);
    });
  } else {
    run_ops(begin, end, full);
  }
}

void CompiledSimulator::eval() {
  telemetry::TraceScope span("sim.eval", "sim");
  static telemetry::Counter& evals = telemetry::metrics().counter("sim.evals");
  evals.add(1);
  const bool event = opts_.event_driven;
  const bool full = full_eval_pending_ || !event;
  for (std::size_t i = 0; i < prog_.latches.size(); ++i) {
    set_source_word(prog_.latches[i].out_slot, latch_words_[i]);
  }
  for (std::size_t l = 0; l + 1 < prog_.level_begin.size(); ++l) {
    sweep_level(prog_.level_begin[l], prog_.level_begin[l + 1], full);
  }
  if (event) {
    for (std::uint32_t id : prog_.inputs) dirty_[id] = 0;
    for (std::uint32_t id : prog_.params) dirty_[id] = 0;
    for (const SimLatch& latch : prog_.latches) dirty_[latch.out_slot] = 0;
  }
  full_eval_pending_ = false;
}

void CompiledSimulator::step() {
  eval();
  for (std::size_t i = 0; i < prog_.latches.size(); ++i) {
    latch_words_[i] = values_[prog_.latches[i].in_slot];
  }
  ++cycle_;
}

bool CompiledSimulator::output(std::size_t index) const {
  FPGADBG_REQUIRE(index < prog_.outputs.size(), "output index out of range");
  return values_[prog_.outputs[index]] & 1;
}

std::uint64_t CompiledSimulator::output_word(std::size_t index) const {
  FPGADBG_REQUIRE(index < prog_.outputs.size(), "output index out of range");
  return values_[prog_.outputs[index]];
}

std::vector<bool> CompiledSimulator::output_values() const {
  std::vector<bool> out;
  out.reserve(prog_.outputs.size());
  for (std::uint32_t id : prog_.outputs) out.push_back(values_[id] & 1);
  return out;
}

void CompiledSimulator::inject_fault(const Fault& fault) {
  FPGADBG_REQUIRE(fault.node < prog_.num_design_nodes,
                  "fault node out of range");
  faults_.push_back(fault);
  const std::uint32_t op = prog_.op_of_node[fault.node];
  if (op != kNoOp) {
    faults_by_op_[op].push_back(fault);
    op_has_fault_[op] = 1;
  }
  full_eval_pending_ = true;
}

void CompiledSimulator::clear_faults() {
  faults_.clear();
  faults_by_op_.clear();
  std::fill(op_has_fault_.begin(), op_has_fault_.end(), 0);
  full_eval_pending_ = true;
}

void CompiledSimulator::restore(const Snapshot& snapshot) {
  FPGADBG_REQUIRE(snapshot.version == kSnapshotVersion,
                  "snapshot from an incompatible engine version");
  FPGADBG_REQUIRE(snapshot.lanes == kLanes,
                  "snapshot was taken at a different batch width");
  FPGADBG_REQUIRE(snapshot.latch_words.size() == latch_words_.size(),
                  "snapshot is for a different design");
  latch_words_ = snapshot.latch_words;
  cycle_ = snapshot.cycle;
  for (std::size_t i = 0; i < prog_.latches.size(); ++i) {
    const std::uint64_t w = latch_words_[i];
    if (w != 0 && w != ~0ULL) uniform_ = false;
    values_[prog_.latches[i].out_slot] = w;
  }
  full_eval_pending_ = true;
}

}  // namespace fpgadbg::sim
