#include "sim/trace_buffer.h"

namespace fpgadbg::sim {

TraceBuffer::TraceBuffer(std::size_t width, std::size_t depth)
    : width_(width), depth_(depth) {
  FPGADBG_REQUIRE(width > 0 && depth > 0, "trace buffer dimensions");
  ring_.assign(depth, BitVec(width));
}

void TraceBuffer::capture(const BitVec& sample) {
  FPGADBG_REQUIRE(sample.size() == width_, "trace sample width mismatch");
  ring_[next_] = sample;
  next_ = (next_ + 1) % depth_;
  ++total_;
}

std::size_t TraceBuffer::samples_stored() const {
  return total_ >= depth_ ? depth_ : static_cast<std::size_t>(total_);
}

const BitVec& TraceBuffer::sample_back(std::size_t age) const {
  FPGADBG_REQUIRE(age < samples_stored(), "trace readback out of range");
  const std::size_t index = (next_ + depth_ - 1 - age) % depth_;
  return ring_[index];
}

std::vector<BitVec> TraceBuffer::read_window() const {
  std::vector<BitVec> window;
  window.reserve(samples_stored());
  for_each_sample([&](const BitVec& sample) { window.push_back(sample); });
  return window;
}

void TraceBuffer::clear() {
  for (auto& row : ring_) row = BitVec(width_);
  next_ = 0;
  total_ = 0;
}

}  // namespace fpgadbg::sim
