// Word-parallel LUT evaluation kernels shared by the simulation engines.
//
// CompiledSimulator (one 64-lane stimulus word per slot) and BatchSimulator
// (B contiguous block words per slot) execute the same per-word math: a
// branch-free Shannon expansion of a packed LUT mask over up to six fanin
// words, plus word-level fault application.  Keeping the kernels in one
// header guarantees the engines stay bit-identical and lets each translation
// unit pick its own codegen flags (the batch engine's inner block loop is
// compiled with the widest vector ISA available).
#pragma once

#include <cstdint>

#include "sim/fault.h"

namespace fpgadbg::sim::kernels {

/// Word-parallel Shannon evaluation of a LUT mask over K fanin lane words.
/// Fully unrolled at compile time: ~4 register ops per reachable mask bit,
/// no branches, no memory traffic beyond the K fanin loads done by the
/// caller.  K == 1 collapses the bottom mux level into a 2-bit select among
/// {0, ~0, w, ~w}.
template <int K>
inline std::uint64_t shannon(std::uint64_t mask, const std::uint64_t* w) {
  if constexpr (K == 0) {
    return static_cast<std::uint64_t>(-static_cast<std::int64_t>(mask & 1));
  } else if constexpr (K == 1) {
    const std::uint64_t b0 = mask & 1;
    const std::uint64_t b1 = (mask >> 1) & 1;
    return static_cast<std::uint64_t>(-static_cast<std::int64_t>(b0)) ^
           (static_cast<std::uint64_t>(-static_cast<std::int64_t>(b0 ^ b1)) &
            w[0]);
  } else {
    const std::uint64_t s = w[K - 1];
    const std::uint64_t lo = shannon<K - 1>(mask, w);
    const std::uint64_t hi =
        shannon<K - 1>(mask >> (std::size_t{1} << (K - 1)), w);
    return lo ^ ((lo ^ hi) & s);
  }
}

inline std::uint64_t eval_op_word(std::uint64_t mask, std::uint32_t arity,
                                  const std::uint64_t* w) {
  switch (arity) {
    case 0: return shannon<0>(mask, w);
    case 1: return shannon<1>(mask, w);
    case 2: return shannon<2>(mask, w);
    case 3: return shannon<3>(mask, w);
    case 4: return shannon<4>(mask, w);
    case 5: return shannon<5>(mask, w);
    default: return shannon<6>(mask, w);
  }
}

/// Applies a fault to a full 64-lane word (every lane faulted).
inline std::uint64_t apply_fault_word(const Fault& f, std::uint64_t value,
                                      std::uint64_t now) {
  switch (f.type) {
    case FaultType::kStuckAt0: return 0;
    case FaultType::kStuckAt1: return ~0ULL;
    case FaultType::kInvert: return ~value;
    case FaultType::kFlipOnCycle: return f.cycle == now ? ~value : value;
  }
  return value;
}

/// Applies a fault to the lanes selected by `lane_mask` only; other lanes
/// keep `value`.  This is what lets one batch mix clean and faulted
/// scenario universes in a single pass.
inline std::uint64_t apply_fault_masked(const Fault& f, std::uint64_t value,
                                        std::uint64_t lane_mask,
                                        std::uint64_t now) {
  switch (f.type) {
    case FaultType::kStuckAt0: return value & ~lane_mask;
    case FaultType::kStuckAt1: return value | lane_mask;
    case FaultType::kInvert: return value ^ lane_mask;
    case FaultType::kFlipOnCycle:
      return f.cycle == now ? value ^ lane_mask : value;
  }
  return value;
}

inline std::uint64_t broadcast(bool value) { return value ? ~0ULL : 0ULL; }

}  // namespace fpgadbg::sim::kernels
