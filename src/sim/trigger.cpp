#include "sim/trigger.h"

#include "support/error.h"

namespace fpgadbg::sim {

Trigger::Trigger(const std::string& condition,
                 std::uint64_t post_trigger_cycles)
    : post_(post_trigger_cycles) {
  conds_.reserve(condition.size());
  for (char c : condition) {
    switch (c) {
      case 'x':
      case 'X':
      case '-':
        conds_.push_back(BitCond::kDontCare);
        break;
      case '0':
        conds_.push_back(BitCond::kLow);
        break;
      case '1':
        conds_.push_back(BitCond::kHigh);
        break;
      case 'r':
      case 'R':
        conds_.push_back(BitCond::kRising);
        break;
      case 'f':
      case 'F':
        conds_.push_back(BitCond::kFalling);
        break;
      default:
        throw Error(std::string("invalid trigger condition char: ") + c);
    }
  }
  FPGADBG_REQUIRE(!conds_.empty(), "empty trigger condition");
}

bool Trigger::matches(const BitVec& sample) const {
  for (std::size_t i = 0; i < conds_.size(); ++i) {
    const bool now = sample.get(i);
    switch (conds_[i]) {
      case BitCond::kDontCare:
        break;
      case BitCond::kLow:
        if (now) return false;
        break;
      case BitCond::kHigh:
        if (!now) return false;
        break;
      case BitCond::kRising:
        if (!have_prev_ || prev_.get(i) || !now) return false;
        break;
      case BitCond::kFalling:
        if (!have_prev_ || !prev_.get(i) || now) return false;
        break;
    }
  }
  return true;
}

bool Trigger::observe(const BitVec& sample) {
  FPGADBG_REQUIRE(sample.size() == conds_.size(),
                  "trigger sample width mismatch");
  if (fired_) {
    if (remaining_post_ == 0) return false;
    --remaining_post_;
    ++seen_;
    prev_ = sample;
    have_prev_ = true;
    return remaining_post_ > 0;
  }
  if (matches(sample)) {
    fired_ = true;
    fire_cycle_ = seen_;
    remaining_post_ = post_;
  }
  ++seen_;
  prev_ = sample;
  have_prev_ = true;
  return !fired_ || remaining_post_ > 0;
}

void Trigger::reset() {
  fired_ = false;
  fire_cycle_ = 0;
  seen_ = 0;
  remaining_post_ = 0;
  have_prev_ = false;
  prev_ = BitVec();
}

TriggerSequence::TriggerSequence(
    const std::vector<std::string>& stage_conditions,
    std::uint64_t post_trigger_cycles)
    : post_(post_trigger_cycles) {
  FPGADBG_REQUIRE(!stage_conditions.empty(), "empty trigger sequence");
  stages_.reserve(stage_conditions.size());
  for (const std::string& cond : stage_conditions) {
    stages_.emplace_back(cond, 0);
  }
}

bool TriggerSequence::observe(const BitVec& sample) {
  if (fired_) {
    if (remaining_post_ == 0) return false;
    --remaining_post_;
    ++seen_;
    return remaining_post_ > 0;
  }
  // Feed the active stage only; when it fires, arm the next one.
  stages_[current_].observe(sample);
  if (stages_[current_].fired()) {
    if (current_ + 1 == stages_.size()) {
      fired_ = true;
      fire_cycle_ = seen_;
      remaining_post_ = post_;
      ++seen_;
      return remaining_post_ > 0;
    }
    ++current_;
  }
  ++seen_;
  return true;
}

void TriggerSequence::reset() {
  for (Trigger& stage : stages_) stage.reset();
  current_ = 0;
  fired_ = false;
  fire_cycle_ = 0;
  seen_ = 0;
  remaining_post_ = 0;
}

}  // namespace fpgadbg::sim
