// Levelized functional simulation of a Netlist.
//
// This is the "FPGA emulation" substrate: it executes the design
// cycle-by-cycle, drives inputs, clocks latches, and exposes every internal
// net's value — the ground truth that the debugging infrastructure's trace
// buffers sample.  Fault injection (sim/fault.h) perturbs it to create the
// buggy silicon the examples hunt down.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"
#include "sim/fault.h"

namespace fpgadbg::sim {

class NetlistSimulator {
 public:
  explicit NetlistSimulator(const netlist::Netlist& nl);

  const netlist::Netlist& netlist() const { return nl_; }

  /// Reset latches to their init values (init 2/3 resets to 0).
  void reset();

  void set_input(netlist::NodeId id, bool value);
  void set_input(const std::string& name, bool value);
  /// Values in inputs() order.
  void set_inputs(const std::vector<bool>& values);
  void set_param(netlist::NodeId id, bool value);
  void set_params(const std::vector<bool>& values);

  /// Propagate combinationally (does not advance latches).
  void eval();

  /// eval() then clock all latches.
  void step();

  bool value(netlist::NodeId id) const { return values_[id] != 0; }
  bool output(std::size_t index) const;
  std::vector<bool> output_values() const;

  /// Install/remove a fault.  Faults apply from the next eval().
  void inject_fault(const Fault& fault);
  void clear_faults();
  const std::vector<Fault>& faults() const { return faults_; }

  std::uint64_t cycle() const { return cycle_; }

 private:
  const netlist::Netlist& nl_;
  std::vector<netlist::NodeId> topo_;
  std::vector<std::uint8_t> values_;
  std::vector<std::uint8_t> latch_state_;
  std::vector<Fault> faults_;
  /// Per-node fault index, rebuilt at injection time: eval() touches the
  /// fault machinery only on nodes that actually carry a fault.
  std::vector<std::uint8_t> fault_mask_;
  std::unordered_map<netlist::NodeId, std::vector<Fault>> faults_by_node_;
  std::uint64_t cycle_ = 0;
};

}  // namespace fpgadbg::sim
