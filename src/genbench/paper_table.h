// Published numbers from the paper's Tables I and II, used by the benchmark
// harness to print paper-vs-measured comparisons (EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

namespace fpgadbg::genbench {

struct PaperRow {
  std::string name;
  // Table I: area in #LUTs.
  std::size_t gates;       ///< "#Gate"
  std::size_t initial;     ///< original design mapped, no instrumentation
  std::size_t simplemap;   ///< instrumented, SimpleMap
  std::size_t abc;         ///< instrumented, ABC
  std::size_t proposed;    ///< instrumented, proposed (LUT area)
  std::size_t tlut;        ///< proposed: tuneable LUTs
  std::size_t tcon;        ///< proposed: tuneable connections
  // Table II: logic depth.
  int depth_golden;
  int depth_simplemap;
  int depth_abc;
  int depth_proposed;
};

const std::vector<PaperRow>& paper_table();
const PaperRow& paper_row(const std::string& name);

}  // namespace fpgadbg::genbench
