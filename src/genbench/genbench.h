// Deterministic benchmark circuit generation.
//
// The paper evaluates on ISCAS89 and VTR benchmarks (stereovision, diffeq1/2,
// clma, or1200, frisc, s38417, s38584).  The original netlists are not
// redistributable here, so this module generates synthetic stand-ins that
// reproduce the structural drivers the experiments depend on: gate count,
// logic depth, latch count and I/O profile (see DESIGN.md, substitution
// table).  Generation is fully deterministic from the per-benchmark seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace fpgadbg::genbench {

struct CircuitSpec {
  std::string name;
  std::size_t num_inputs = 8;
  std::size_t num_outputs = 8;
  std::size_t num_latches = 0;
  std::size_t num_gates = 100;   ///< combinational nodes (<= max_fanin inputs)
  int depth = 5;                 ///< target logic depth (levels)
  int max_fanin = 6;
  std::uint64_t seed = 1;
};

/// Generates a netlist matching the spec.  Post-conditions (verified by
/// tests): num_logic_nodes() == num_gates, depth() == spec.depth, every
/// logic node has fanout or is an output, every node function has full
/// support (so synthesis cannot shrink the circuit).
netlist::Netlist generate(const CircuitSpec& spec);

/// Specs for the eight benchmarks of the paper's Tables I/II.
std::vector<CircuitSpec> paper_benchmarks();
/// Lookup by benchmark name; throws on unknown name.
CircuitSpec paper_benchmark(const std::string& name);

}  // namespace fpgadbg::genbench
