#include "genbench/genbench.h"

#include <algorithm>

#include "support/error.h"
#include "support/rng.h"

namespace fpgadbg::genbench {

using netlist::kNullNode;
using netlist::Netlist;
using netlist::NodeId;
using logic::TruthTable;

namespace {

/// AND of all variables, each randomly inverted, optionally inverted output.
TruthTable random_and(int arity, Rng& rng) {
  TruthTable t = TruthTable::one(arity);
  for (int v = 0; v < arity; ++v) {
    const TruthTable x = TruthTable::var(arity, v);
    t = t & (rng.next_bool() ? ~x : x);
  }
  return rng.next_bool() ? ~t : t;
}

TruthTable random_xor(int arity, Rng& rng) {
  TruthTable t = logic::tt_xor(arity);
  return rng.next_bool() ? ~t : t;
}

/// Two-level AND-OR (AOI-style) over a random split of the variables.
TruthTable random_aoi(int arity, Rng& rng) {
  const int split = 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(arity - 1)));
  TruthTable g1 = TruthTable::one(arity);
  TruthTable g2 = TruthTable::one(arity);
  for (int v = 0; v < arity; ++v) {
    const TruthTable x = TruthTable::var(arity, v);
    TruthTable lit = rng.next_bool() ? ~x : x;
    if (v < split) {
      g1 = g1 & lit;
    } else {
      g2 = g2 & lit;
    }
  }
  const TruthTable t = g1 | g2;
  return rng.next_bool() ? ~t : t;
}

/// Random gate from a realistic cell library (the functions real synthesis
/// emits: decorated ANDs/ORs, XORs, muxes, AOIs).  Full support over all
/// `arity` variables is guaranteed so sweep() cannot shrink the circuit.
TruthTable library_tt(int arity, Rng& rng) {
  FPGADBG_ASSERT(arity >= 1, "library gate arity");
  if (arity == 1) return ~TruthTable::var(1, 0);  // inverter
  TruthTable t(arity);
  const double dice = rng.next_double();
  if (arity >= 3 && dice < 0.15) {
    t = logic::tt_mux21().extended_to(arity);
    // Only arity 3 muxes are pure; for wider nodes fall through to AOI.
    if (arity == 3) {
      return rng.next_bool() ? ~t : t;
    }
    return random_aoi(arity, rng);
  }
  if (dice < 0.45) return random_and(arity, rng);
  if (dice < 0.60) return random_xor(arity, rng);
  return random_aoi(arity, rng);
}

/// Tracks which generated nodes still lack a fanout, with O(1) amortized
/// "take next unread of level L" and "take random unread anywhere".
class UnreadTracker {
 public:
  void add(std::size_t level, NodeId id) {
    if (levels_.size() <= level) levels_.resize(level + 1);
    levels_[level].push_back(id);
  }

  /// Makes a finished level's nodes eligible for random (cross-level) picks.
  /// Same-level picks are never allowed: they would deepen the level graph.
  void commit_level(std::size_t level) {
    if (level < levels_.size()) {
      all_.insert(all_.end(), levels_[level].begin(), levels_[level].end());
    }
  }

  void mark_read(NodeId id) {
    if (read_.size() <= id) read_.resize(id + 1, false);
    read_[id] = true;
  }

  bool is_read(NodeId id) const { return id < read_.size() && read_[id]; }

  /// Next unread node of `level`, or kNullNode.
  NodeId take_from_level(std::size_t level) {
    if (level >= levels_.size()) return kNullNode;
    auto& vec = levels_[level];
    auto& cur = cursor_level_.emplace(level, 0).first->second;
    while (cur < vec.size() && is_read(vec[cur])) ++cur;
    if (cur >= vec.size()) return kNullNode;
    const NodeId id = vec[cur++];
    mark_read(id);
    return id;
  }

  /// A random unread node, or kNullNode after a few failed draws.
  NodeId take_random(Rng& rng) {
    for (int attempt = 0; attempt < 8 && !all_.empty(); ++attempt) {
      const std::size_t i = rng.next_below(all_.size());
      const NodeId id = all_[i];
      all_[i] = all_.back();
      all_.pop_back();
      if (!is_read(id)) {
        mark_read(id);
        return id;
      }
    }
    return kNullNode;
  }

  /// All still-unread nodes, in creation order.
  std::vector<NodeId> drain() {
    std::vector<NodeId> out;
    for (const auto& vec : levels_) {
      for (NodeId id : vec) {
        if (!is_read(id)) {
          out.push_back(id);
          mark_read(id);
        }
      }
    }
    return out;
  }

 private:
  std::vector<std::vector<NodeId>> levels_;
  std::unordered_map<std::size_t, std::size_t> cursor_level_;
  std::vector<NodeId> all_;
  std::vector<bool> read_;
};

}  // namespace

Netlist generate(const CircuitSpec& spec) {
  FPGADBG_REQUIRE(spec.num_inputs > 0, "generator needs at least one input");
  FPGADBG_REQUIRE(spec.depth >= 1, "generator needs depth >= 1");
  FPGADBG_REQUIRE(spec.num_gates >= static_cast<std::size_t>(spec.depth),
                  "need at least one gate per level");
  FPGADBG_REQUIRE(spec.max_fanin >= 2 && spec.max_fanin <= 6,
                  "max_fanin must be in [2, 6]");

  Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0x1234567);
  Netlist nl(spec.name);

  // Sources: inputs and latch outputs.
  std::vector<NodeId> sources;
  for (std::size_t i = 0; i < spec.num_inputs; ++i) {
    sources.push_back(nl.add_input("pi" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < spec.num_latches; ++i) {
    sources.push_back(nl.add_latch("lq" + std::to_string(i), kNullNode,
                                   static_cast<int>(rng.next_below(2))));
  }

  // Distribute gates across levels: every level gets at least one node, the
  // remainder spread with a mild bias toward earlier levels (wide cones that
  // narrow toward the outputs, like real circuits).
  const std::size_t levels = static_cast<std::size_t>(spec.depth);
  std::vector<std::size_t> level_size(levels, 1);
  std::size_t remaining = spec.num_gates - levels;
  std::vector<double> weight(levels);
  double total_weight = 0.0;
  for (std::size_t l = 0; l < levels; ++l) {
    weight[l] = 1.0 + 1.5 * (1.0 - static_cast<double>(l) / levels);
    total_weight += weight[l];
  }
  for (std::size_t l = 0; l < levels && remaining > 0; ++l) {
    std::size_t share = static_cast<std::size_t>(
        static_cast<double>(spec.num_gates - levels) * weight[l] / total_weight);
    share = std::min(share, remaining);
    level_size[l] += share;
    remaining -= share;
  }
  level_size[0] += remaining;  // rounding residue

  UnreadTracker unread;
  std::vector<std::vector<NodeId>> by_level(levels);
  std::vector<NodeId> all_prior = sources;  // candidates for extra fanins
  std::size_t gate_counter = 0;

  for (std::size_t l = 0; l < levels; ++l) {
    const std::vector<NodeId>& prev = l == 0 ? sources : by_level[l - 1];
    for (std::size_t g = 0; g < level_size[l]; ++g) {
      const int arity = static_cast<int>(
          2 + rng.next_below(static_cast<std::uint64_t>(spec.max_fanin - 1)));
      std::vector<NodeId> fanins;
      // First fanin from the immediately previous level (enforces depth),
      // preferring a node that has no fanout yet.
      NodeId first = l == 0 ? kNullNode : unread.take_from_level(l - 1);
      if (first == kNullNode) {
        first = prev[rng.next_below(prev.size())];
        unread.mark_read(first);
      }
      fanins.push_back(first);
      // Remaining fanins from anywhere earlier, distinct.
      int guard = 0;
      while (static_cast<int>(fanins.size()) < arity && guard < 64) {
        ++guard;
        NodeId cand = kNullNode;
        if (rng.next_bool(0.5)) cand = unread.take_random(rng);
        if (cand == kNullNode) {
          cand = all_prior[rng.next_below(all_prior.size())];
          unread.mark_read(cand);
        }
        if (std::find(fanins.begin(), fanins.end(), cand) != fanins.end()) {
          continue;
        }
        fanins.push_back(cand);
      }
      const int real_arity = static_cast<int>(fanins.size());
      const NodeId id =
          nl.add_logic("g" + std::to_string(gate_counter++), fanins,
                       library_tt(real_arity, rng));
      by_level[l].push_back(id);
      unread.add(l, id);
    }
    all_prior.insert(all_prior.end(), by_level[l].begin(), by_level[l].end());
    unread.commit_level(l);
  }

  // Latch inputs and primary outputs come from the deepest level so the
  // depth target holds exactly; prefer nodes without fanout.
  const std::vector<NodeId>& top = by_level[levels - 1];
  for (std::size_t i = 0; i < spec.num_latches; ++i) {
    NodeId drv = unread.take_from_level(levels - 1);
    if (drv == kNullNode) drv = top[rng.next_below(top.size())];
    nl.set_latch_input(i, drv);
  }
  for (std::size_t i = 0; i < spec.num_outputs; ++i) {
    NodeId src = unread.take_from_level(levels - 1);
    if (src == kNullNode) src = top[rng.next_below(top.size())];
    nl.add_output(src, "po" + std::to_string(i));
  }

  // Any node still unread becomes an extra output, so nothing is dead.
  std::size_t extra = 0;
  for (NodeId id : unread.drain()) {
    nl.add_output(id, "po_x" + std::to_string(extra++));
  }

  nl.check();
  FPGADBG_ASSERT(nl.num_logic_nodes() == spec.num_gates,
                 "generator missed the gate-count target");
  FPGADBG_ASSERT(nl.depth() == spec.depth,
                 "generator missed the depth target");
  return nl;
}

std::vector<CircuitSpec> paper_benchmarks() {
  // Gate counts and golden depths follow Table I ("#Gate") and Table II
  // ("Golden") of the paper; I/O and latch profiles approximate the real
  // ISCAS89/VTR circuits.
  return {
      {"stereov", 32, 24, 8, 215, 4, 6, 101},
      {"diffeq2", 24, 24, 32, 419, 14, 6, 102},
      {"diffeq1", 32, 32, 48, 582, 15, 6, 103},
      {"clma", 62, 82, 33, 8381, 11, 6, 104},
      {"or1200", 64, 64, 128, 3136, 27, 6, 105},
      {"frisc", 20, 116, 886, 6002, 14, 6, 106},
      {"s38417", 28, 106, 1464, 6096, 7, 6, 107},
      {"s38584", 38, 304, 1426, 6281, 7, 6, 108},
  };
}

CircuitSpec paper_benchmark(const std::string& name) {
  for (const CircuitSpec& spec : paper_benchmarks()) {
    if (spec.name == name) return spec;
  }
  throw Error("unknown paper benchmark: " + name);
}

}  // namespace fpgadbg::genbench
