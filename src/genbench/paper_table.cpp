#include "genbench/paper_table.h"

#include "support/error.h"

namespace fpgadbg::genbench {

const std::vector<PaperRow>& paper_table() {
  // Transcribed from Kourfali & Stroobandt, IPDPSW 2016, Tables I and II.
  static const std::vector<PaperRow> rows = {
      //  name       gates  init   SM     ABC    prop  tlut  tcon   dG dSM dABC dP
      {"stereov", 215, 208, 553, 590, 190, 8, 332, 4, 5, 5, 4},
      {"diffeq2", 419, 422, 1719, 1819, 325, 2, 712, 14, 15, 15, 14},
      {"diffeq1", 582, 575, 2556, 2659, 491, 4, 1065, 15, 15, 15, 14},
      {"clma", 8381, 4461, 23694, 23219, 7707, 1252, 7935, 11, 11, 11, 11},
      {"or1200", 3136, 3084, 9769, 10958, 3004, 9, 2986, 27, 28, 28, 27},
      {"frisc", 6002, 2747, 11517, 11412, 5881, 2333, 4910, 14, 14, 14, 14},
      {"s38417", 6096, 3462, 20695, 21040, 6204, 1495, 5597, 7, 8, 8, 7},
      {"s38584", 6281, 2906, 20687, 21032, 6204, 1495, 5597, 7, 8, 8, 7},
  };
  return rows;
}

const PaperRow& paper_row(const std::string& name) {
  for (const PaperRow& row : paper_table()) {
    if (row.name == name) return row;
  }
  throw Error("unknown paper table row: " + name);
}

}  // namespace fpgadbg::genbench
