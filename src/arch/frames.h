// Configuration-frame geometry.
//
// SRAM FPGAs organise their configuration memory into frames — the atomic
// unit of (partial) reconfiguration.  Like Xilinx devices, frames here are
// column-based: all configuration bits of one tile column are packed into
// consecutive frames of kFrameBits bits.  Per tile the model allocates
//   CLB:  cluster_size * 2^K LUT bits (+1 FF-enable per BLE)
//   all:  one bit per routing switch whose sink wire/pin lives in the tile
// The PConf machinery (bitstream/) expresses a subset of these bits as
// Boolean functions of debug parameters; the specialisation stage diffs
// frames and reconfigures only the changed ones through the ICAP model.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/rr_graph.h"

namespace fpgadbg::arch {

class FrameGeometry {
 public:
  /// Frame size, matching a Virtex-5 frame (41 words x 32 bits).
  static constexpr std::size_t kFrameBits = 1312;

  FrameGeometry(const Device& device, const RRGraph& rr);

  std::size_t total_bits() const { return total_bits_; }
  std::size_t num_frames() const { return num_frames_; }
  std::size_t frames_in_column(int x) const;

  /// Global bit index of LUT-table bit `bit` of BLE `ble` at CLB (x, y).
  std::size_t lut_bit(int x, int y, int ble, int bit) const;
  /// Global bit index of the FF-enable bit of BLE `ble` at CLB (x, y).
  std::size_t ff_bit(int x, int y, int ble) const;
  /// Global bit index controlling RR switch (edge) `e`.
  std::size_t switch_bit(RREdgeId e) const { return switch_base_[e]; }

  std::size_t frame_of_bit(std::size_t bit) const { return bit / kFrameBits; }

  /// First frame index of column x (frames are column-aligned).
  std::size_t first_frame_of_column(int x) const;

 private:
  const Device& device_;
  const RRGraph& rr_;
  int lut_bits_per_ble_;
  std::vector<std::size_t> column_base_bits_;  ///< per column, frame-aligned
  std::vector<std::size_t> tile_base_;         ///< per tile (row-major)
  std::vector<std::size_t> switch_base_;       ///< per RR edge -> bit index
  std::size_t total_bits_ = 0;
  std::size_t num_frames_ = 0;
};

}  // namespace fpgadbg::arch
