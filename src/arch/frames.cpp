#include "arch/frames.h"

#include "support/error.h"

namespace fpgadbg::arch {

FrameGeometry::FrameGeometry(const Device& device, const RRGraph& rr)
    : device_(device), rr_(rr) {
  const ArchParams& p = device.params();
  lut_bits_per_ble_ = 1 << p.lut_size;

  const int width = device.width();
  const int height = device.height();

  // Count switch bits per tile: one per edge whose sink belongs to the tile.
  std::vector<std::size_t> switches_per_tile(
      static_cast<std::size_t>(width * height), 0);
  for (RREdgeId e = 0; e < rr.num_edges(); ++e) {
    const RRNode& sink = rr.node(rr.edge(e).to);
    ++switches_per_tile[static_cast<std::size_t>(sink.y * width + sink.x)];
  }

  // Per-tile configuration size.
  auto tile_bits = [&](int x, int y) -> std::size_t {
    std::size_t bits =
        switches_per_tile[static_cast<std::size_t>(y * width + x)];
    if (device.tile(x, y) == TileKind::kClb) {
      bits += static_cast<std::size_t>(p.cluster_size) *
              (static_cast<std::size_t>(lut_bits_per_ble_) + 1);
    }
    return bits;
  };

  // Column-major, frame-aligned layout.
  tile_base_.assign(static_cast<std::size_t>(width * height), 0);
  column_base_bits_.assign(static_cast<std::size_t>(width) + 1, 0);
  std::size_t cursor = 0;
  for (int x = 0; x < width; ++x) {
    column_base_bits_[static_cast<std::size_t>(x)] = cursor;
    for (int y = 0; y < height; ++y) {
      tile_base_[static_cast<std::size_t>(y * width + x)] = cursor;
      cursor += tile_bits(x, y);
    }
    // Frame-align the next column.
    cursor = (cursor + kFrameBits - 1) / kFrameBits * kFrameBits;
  }
  column_base_bits_[static_cast<std::size_t>(width)] = cursor;
  total_bits_ = cursor;
  num_frames_ = total_bits_ / kFrameBits;

  // Assign switch bits: per tile, switches take the bits after the CLB
  // block; enumerate edges again in order, bumping a per-tile cursor.
  std::vector<std::size_t> tile_cursor(static_cast<std::size_t>(width * height));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      std::size_t offset = tile_base_[static_cast<std::size_t>(y * width + x)];
      if (device.tile(x, y) == TileKind::kClb) {
        offset += static_cast<std::size_t>(p.cluster_size) *
                  (static_cast<std::size_t>(lut_bits_per_ble_) + 1);
      }
      tile_cursor[static_cast<std::size_t>(y * width + x)] = offset;
    }
  }
  switch_base_.resize(rr.num_edges());
  for (RREdgeId e = 0; e < rr.num_edges(); ++e) {
    const RRNode& sink = rr.node(rr.edge(e).to);
    auto& cur = tile_cursor[static_cast<std::size_t>(sink.y * width + sink.x)];
    switch_base_[e] = cur++;
  }
}

std::size_t FrameGeometry::frames_in_column(int x) const {
  FPGADBG_REQUIRE(x >= 0 && x < device_.width(), "column out of range");
  return (column_base_bits_[static_cast<std::size_t>(x) + 1] -
          column_base_bits_[static_cast<std::size_t>(x)]) /
         kFrameBits;
}

std::size_t FrameGeometry::first_frame_of_column(int x) const {
  FPGADBG_REQUIRE(x >= 0 && x < device_.width(), "column out of range");
  return column_base_bits_[static_cast<std::size_t>(x)] / kFrameBits;
}

std::size_t FrameGeometry::lut_bit(int x, int y, int ble, int bit) const {
  FPGADBG_REQUIRE(device_.tile(x, y) == TileKind::kClb, "not a CLB tile");
  FPGADBG_REQUIRE(ble >= 0 && ble < device_.params().cluster_size &&
                      bit >= 0 && bit < lut_bits_per_ble_,
                  "BLE/bit out of range");
  return tile_base_[static_cast<std::size_t>(y * device_.width() + x)] +
         static_cast<std::size_t>(ble) *
             (static_cast<std::size_t>(lut_bits_per_ble_) + 1) +
         static_cast<std::size_t>(bit);
}

std::size_t FrameGeometry::ff_bit(int x, int y, int ble) const {
  FPGADBG_REQUIRE(device_.tile(x, y) == TileKind::kClb, "not a CLB tile");
  return tile_base_[static_cast<std::size_t>(y * device_.width() + x)] +
         static_cast<std::size_t>(ble) *
             (static_cast<std::size_t>(lut_bits_per_ble_) + 1) +
         static_cast<std::size_t>(lut_bits_per_ble_);
}

}  // namespace fpgadbg::arch
