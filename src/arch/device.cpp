#include "arch/device.h"

#include <cmath>
#include <sstream>

#include "support/error.h"

namespace fpgadbg::arch {

Device::Device(const ArchParams& params, std::size_t min_clbs)
    : params_(params) {
  FPGADBG_REQUIRE(min_clbs > 0, "device needs at least one CLB");
  FPGADBG_REQUIRE(params.cluster_size >= 1 && params.channel_width >= 2,
                  "invalid architecture parameters");

  // Find the smallest square core that, after reserving BRAM columns, still
  // provides min_clbs CLB tiles.
  int core = 1;
  for (;; ++core) {
    int bram_cols = 0;
    if (params.bram_column_period > 0) {
      bram_cols = core / (params.bram_column_period + 1);
    }
    const std::size_t clbs =
        static_cast<std::size_t>(core - bram_cols) * static_cast<std::size_t>(core);
    if (clbs >= min_clbs) break;
  }

  width_ = core + 2;   // +IO ring
  height_ = core + 2;
  tiles_.assign(static_cast<std::size_t>(width_ * height_), TileKind::kClb);

  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      TileKind kind;
      if (x == 0 || y == 0 || x == width_ - 1 || y == height_ - 1) {
        kind = TileKind::kIo;
      } else if (params.bram_column_period > 0 &&
                 x % (params.bram_column_period + 1) == 0) {
        kind = TileKind::kBram;
      } else {
        kind = TileKind::kClb;
      }
      tiles_[static_cast<std::size_t>(y * width_ + x)] = kind;
      switch (kind) {
        case TileKind::kIo:
          io_positions_.emplace_back(x, y);
          break;
        case TileKind::kClb:
          clb_positions_.emplace_back(x, y);
          break;
        case TileKind::kBram:
          bram_positions_.emplace_back(x, y);
          break;
      }
    }
  }
  FPGADBG_ASSERT(num_clbs() >= min_clbs, "device sizing failed");
}

TileKind Device::tile(int x, int y) const {
  FPGADBG_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_,
                  "tile coordinates out of range");
  return tiles_[static_cast<std::size_t>(y * width_ + x)];
}

std::string Device::describe() const {
  std::ostringstream os;
  os << width_ << 'x' << height_ << " grid, " << num_clbs() << " CLBs ("
     << params_.cluster_size << "x" << params_.lut_size << "-LUT), "
     << num_brams() << " BRAMs, W=" << params_.channel_width;
  return os.str();
}

}  // namespace fpgadbg::arch
