// Routing-resource graph (VPR-style, simplified).
//
// Nodes are physical routing resources: block output pins (OPIN), block
// input pins (IPIN), and unit-length wire segments in the horizontal (CHANX)
// and vertical (CHANY) channels of every tile.  Edges are programmable
// switches.  The router (pnr/route.h) negotiates congestion over this graph;
// the bitstream generator assigns one configuration bit per switch.
//
// Connectivity (per tile, track t, channel width W):
//   OPIN(x,y)       -> CHANX(x,y,t), CHANY(x,y,t)           (full Fc_out)
//   CHANX(x,y,t)    -> CHANX(x±1,y,t)                       (wire continues)
//   CHANY(x,y,t)    -> CHANY(x,y±1,t)
//   CHANX(x,y,t)    -> CHANY(x,y,(t+1)%W) and back          (Wilton-lite turn)
//   CHANX/Y(x,y,t)  -> IPIN(x,y), IPIN of the adjacent tile
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/device.h"
#include "support/status.h"

namespace fpgadbg::arch {

enum class RRKind : std::uint8_t { kOpin, kIpin, kChanX, kChanY };

/// Field order packs the struct to exactly 10 bytes with NO hidden padding:
/// blob artifacts serialize node arrays as raw spans, and padding bytes
/// would make the serialized image nondeterministic.
struct RRNode {
  std::int16_t x;
  std::int16_t y;
  std::int16_t track;    ///< -1 for pins
  std::int16_t capacity; ///< wires 1; pins = pin count of the block
  RRKind kind;
  std::uint8_t pad = 0;  ///< always zero (deterministic raw bytes)
};
static_assert(sizeof(RRNode) == 10, "RRNode must stay padding-free");

using RRNodeId = std::uint32_t;
using RREdgeId = std::uint32_t;

struct RREdge {
  RRNodeId from;
  RRNodeId to;
};

/// Contiguous run of edge ids [first, first + count).  The adjacency is
/// stored in CSR form, so a node's outgoing edges are consecutive ids and
/// iterating a span walks the edge array linearly (cache-friendly for the
/// router's wavefront expansion).
class RREdgeSpan {
 public:
  class iterator {
   public:
    explicit iterator(RREdgeId e) : e_(e) {}
    RREdgeId operator*() const { return e_; }
    iterator& operator++() {
      ++e_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return e_ != o.e_; }
    bool operator==(const iterator& o) const { return e_ == o.e_; }

   private:
    RREdgeId e_;
  };

  RREdgeSpan(RREdgeId first, RREdgeId last) : first_(first), last_(last) {}
  iterator begin() const { return iterator(first_); }
  iterator end() const { return iterator(last_); }
  std::size_t size() const { return last_ - first_; }
  bool empty() const { return first_ == last_; }

 private:
  RREdgeId first_;
  RREdgeId last_;
};

class RRGraph {
 public:
  explicit RRGraph(const Device& device);

  /// Zero-copy load: builds an RRGraph whose node/edge/offset arrays
  /// BORROW from `backing` (typically an mmap'd blob) instead of being
  /// constructed.  Validates the structural invariants that keep the
  /// router's reads in bounds — array counts matching the device geometry,
  /// monotone CSR offsets, edge endpoints within range — and rejects
  /// violations as kCorruptArtifact.  Per-node coordinates are trusted
  /// from the digest-verified producer plus the cache key (which pins the
  /// architecture parameters the graph was built from).
  static support::Result<std::unique_ptr<RRGraph>> adopt(
      const Device& device, const RRNode* nodes, std::size_t num_nodes,
      const RREdge* edges, std::size_t num_edges,
      const RREdgeId* edge_offsets, std::size_t num_offsets,
      std::shared_ptr<const void> backing);

  // The read-side pointers alias the owned vectors, so a copy would dangle.
  RRGraph(const RRGraph&) = delete;
  RRGraph& operator=(const RRGraph&) = delete;

  const Device& device() const { return device_; }

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return num_edges_; }
  const RRNode& node(RRNodeId id) const { return nodes_[id]; }
  const RREdge& edge(RREdgeId id) const { return edges_[id]; }

  /// Outgoing edge ids of a node: a contiguous CSR span, so the ids are
  /// consecutive and edge(e).to reads walk memory linearly.
  RREdgeSpan out_edges(RRNodeId id) const {
    return RREdgeSpan(edge_offsets_[id], edge_offsets_[id + 1]);
  }

  RRNodeId opin_at(int x, int y) const;
  RRNodeId ipin_at(int x, int y) const;
  RRNodeId chanx_at(int x, int y, int track) const;
  RRNodeId chany_at(int x, int y, int track) const;

  /// Raw CSR arrays for blob serialization (nodes, edges, offsets; the
  /// offsets array has num_nodes() + 1 elements).
  const RRNode* nodes_data() const { return nodes_; }
  const RREdge* edges_data() const { return edges_; }
  const RREdgeId* edge_offsets_data() const { return edge_offsets_; }

  /// True when the arrays borrow from a mapped artifact.
  bool borrowed() const { return backing_ != nullptr; }

 private:
  explicit RRGraph(const Device& device, int width, int height, int tracks);

  /// Points the read-side arrays at the owned vectors (cold-build mode).
  void use_owned();

  const Device& device_;
  // Read-side arrays.  Either aliases of the owned vectors below (cold
  // build) or views into `backing_` (warm mmap load).  The router only
  // ever sees these pointers, so both modes cost identical reads.
  const RRNode* nodes_ = nullptr;
  std::size_t num_nodes_ = 0;
  /// CSR adjacency: edges is sorted by `from` (insertion order preserved
  /// within one source node); edge_offsets[n]..edge_offsets[n+1] indexes
  /// node n's outgoing edges.  Edge ids are CSR positions.
  const RREdge* edges_ = nullptr;
  std::size_t num_edges_ = 0;
  const RREdgeId* edge_offsets_ = nullptr;
  std::vector<RRNode> nodes_owned_;
  std::vector<RREdge> edges_owned_;
  std::vector<RREdgeId> edge_offsets_owned_;
  std::shared_ptr<const void> backing_;
  // Dense index helpers.
  int width_, height_, tracks_;
  RRNodeId base_opin_, base_ipin_, base_chanx_, base_chany_;
};

}  // namespace fpgadbg::arch
