// Routing-resource graph (VPR-style, simplified).
//
// Nodes are physical routing resources: block output pins (OPIN), block
// input pins (IPIN), and unit-length wire segments in the horizontal (CHANX)
// and vertical (CHANY) channels of every tile.  Edges are programmable
// switches.  The router (pnr/route.h) negotiates congestion over this graph;
// the bitstream generator assigns one configuration bit per switch.
//
// Connectivity (per tile, track t, channel width W):
//   OPIN(x,y)       -> CHANX(x,y,t), CHANY(x,y,t)           (full Fc_out)
//   CHANX(x,y,t)    -> CHANX(x±1,y,t)                       (wire continues)
//   CHANY(x,y,t)    -> CHANY(x,y±1,t)
//   CHANX(x,y,t)    -> CHANY(x,y,(t+1)%W) and back          (Wilton-lite turn)
//   CHANX/Y(x,y,t)  -> IPIN(x,y), IPIN of the adjacent tile
#pragma once

#include <cstdint>
#include <vector>

#include "arch/device.h"

namespace fpgadbg::arch {

enum class RRKind : std::uint8_t { kOpin, kIpin, kChanX, kChanY };

struct RRNode {
  RRKind kind;
  std::int16_t x;
  std::int16_t y;
  std::int16_t track;    ///< -1 for pins
  std::int16_t capacity; ///< wires 1; pins = pin count of the block
};

using RRNodeId = std::uint32_t;
using RREdgeId = std::uint32_t;

struct RREdge {
  RRNodeId from;
  RRNodeId to;
};

/// Contiguous run of edge ids [first, first + count).  The adjacency is
/// stored in CSR form, so a node's outgoing edges are consecutive ids and
/// iterating a span walks the edge array linearly (cache-friendly for the
/// router's wavefront expansion).
class RREdgeSpan {
 public:
  class iterator {
   public:
    explicit iterator(RREdgeId e) : e_(e) {}
    RREdgeId operator*() const { return e_; }
    iterator& operator++() {
      ++e_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return e_ != o.e_; }
    bool operator==(const iterator& o) const { return e_ == o.e_; }

   private:
    RREdgeId e_;
  };

  RREdgeSpan(RREdgeId first, RREdgeId last) : first_(first), last_(last) {}
  iterator begin() const { return iterator(first_); }
  iterator end() const { return iterator(last_); }
  std::size_t size() const { return last_ - first_; }
  bool empty() const { return first_ == last_; }

 private:
  RREdgeId first_;
  RREdgeId last_;
};

class RRGraph {
 public:
  explicit RRGraph(const Device& device);

  const Device& device() const { return device_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return edges_.size(); }
  const RRNode& node(RRNodeId id) const { return nodes_[id]; }
  const RREdge& edge(RREdgeId id) const { return edges_[id]; }

  /// Outgoing edge ids of a node: a contiguous CSR span, so the ids are
  /// consecutive and edge(e).to reads walk memory linearly.
  RREdgeSpan out_edges(RRNodeId id) const {
    return RREdgeSpan(edge_offsets_[id], edge_offsets_[id + 1]);
  }

  RRNodeId opin_at(int x, int y) const;
  RRNodeId ipin_at(int x, int y) const;
  RRNodeId chanx_at(int x, int y, int track) const;
  RRNodeId chany_at(int x, int y, int track) const;

 private:
  const Device& device_;
  std::vector<RRNode> nodes_;
  /// CSR adjacency: edges_ is sorted by `from` (insertion order preserved
  /// within one source node); edge_offsets_[n]..edge_offsets_[n+1] indexes
  /// node n's outgoing edges.  Edge ids are CSR positions.
  std::vector<RREdge> edges_;
  std::vector<RREdgeId> edge_offsets_;
  // Dense index helpers.
  int width_, height_, tracks_;
  RRNodeId base_opin_, base_ipin_, base_chanx_, base_chany_;
};

}  // namespace fpgadbg::arch
