// Routing-resource graph (VPR-style, simplified).
//
// Nodes are physical routing resources: block output pins (OPIN), block
// input pins (IPIN), and unit-length wire segments in the horizontal (CHANX)
// and vertical (CHANY) channels of every tile.  Edges are programmable
// switches.  The router (pnr/route.h) negotiates congestion over this graph;
// the bitstream generator assigns one configuration bit per switch.
//
// Connectivity (per tile, track t, channel width W):
//   OPIN(x,y)       -> CHANX(x,y,t), CHANY(x,y,t)           (full Fc_out)
//   CHANX(x,y,t)    -> CHANX(x±1,y,t)                       (wire continues)
//   CHANY(x,y,t)    -> CHANY(x,y±1,t)
//   CHANX(x,y,t)    -> CHANY(x,y,(t+1)%W) and back          (Wilton-lite turn)
//   CHANX/Y(x,y,t)  -> IPIN(x,y), IPIN of the adjacent tile
#pragma once

#include <cstdint>
#include <vector>

#include "arch/device.h"

namespace fpgadbg::arch {

enum class RRKind : std::uint8_t { kOpin, kIpin, kChanX, kChanY };

struct RRNode {
  RRKind kind;
  std::int16_t x;
  std::int16_t y;
  std::int16_t track;    ///< -1 for pins
  std::int16_t capacity; ///< wires 1; pins = pin count of the block
};

using RRNodeId = std::uint32_t;
using RREdgeId = std::uint32_t;

struct RREdge {
  RRNodeId from;
  RRNodeId to;
};

class RRGraph {
 public:
  explicit RRGraph(const Device& device);

  const Device& device() const { return device_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return edges_.size(); }
  const RRNode& node(RRNodeId id) const { return nodes_[id]; }
  const RREdge& edge(RREdgeId id) const { return edges_[id]; }

  /// Outgoing edge ids of a node.
  const std::vector<RREdgeId>& out_edges(RRNodeId id) const {
    return out_edges_[id];
  }

  RRNodeId opin_at(int x, int y) const;
  RRNodeId ipin_at(int x, int y) const;
  RRNodeId chanx_at(int x, int y, int track) const;
  RRNodeId chany_at(int x, int y, int track) const;

 private:
  void add_edge(RRNodeId from, RRNodeId to);

  const Device& device_;
  std::vector<RRNode> nodes_;
  std::vector<RREdge> edges_;
  std::vector<std::vector<RREdgeId>> out_edges_;
  // Dense index helpers.
  int width_, height_, tracks_;
  RRNodeId base_opin_, base_ipin_, base_chanx_, base_chany_;
};

}  // namespace fpgadbg::arch
