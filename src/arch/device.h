// Island-style FPGA device model.
//
// Stands in for the paper's Xilinx Virtex-5 target (see DESIGN.md): a square
// grid of CLBs (each N BLEs of one K-LUT + FF), ringed by IO tiles, with
// BRAM columns that hold the trace buffers, and horizontal/vertical routing
// channels of uniform width.  All area/wire/CLB/frame metrics of the paper's
// evaluation are defined over this model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fpgadbg::arch {

enum class TileKind : std::uint8_t { kIo, kClb, kBram };

struct ArchParams {
  int lut_size = 6;        ///< K
  int cluster_size = 8;    ///< N BLEs per CLB
  int cluster_inputs = 0;  ///< I; 0 = auto (K/2 * (N+1), the classic rule)
  int channel_width = 32;  ///< W routing tracks per channel
  /// One BRAM (trace-buffer) column every `bram_column_period` CLB columns;
  /// 0 disables BRAM columns.
  int bram_column_period = 8;
  int bram_kbits = 18;     ///< capacity per BRAM tile (kbit), Virtex-5-style

  int effective_cluster_inputs() const {
    return cluster_inputs > 0 ? cluster_inputs
                              : (lut_size / 2) * (cluster_size + 1);
  }
};

class Device {
 public:
  /// Builds the smallest roughly-square device with at least `min_clbs`
  /// CLB tiles (plus the IO ring and BRAM columns dictated by params).
  Device(const ArchParams& params, std::size_t min_clbs);

  const ArchParams& params() const { return params_; }

  /// Grid dimensions including the IO ring.
  int width() const { return width_; }
  int height() const { return height_; }

  TileKind tile(int x, int y) const;
  bool is_clb(int x, int y) const { return tile(x, y) == TileKind::kClb; }

  std::size_t num_clbs() const { return clb_positions_.size(); }
  std::size_t num_brams() const { return bram_positions_.size(); }
  const std::vector<std::pair<int, int>>& clb_positions() const {
    return clb_positions_;
  }
  const std::vector<std::pair<int, int>>& bram_positions() const {
    return bram_positions_;
  }
  const std::vector<std::pair<int, int>>& io_positions() const {
    return io_positions_;
  }

  /// Total BLE (LUT+FF) capacity.
  std::size_t lut_capacity() const {
    return num_clbs() * static_cast<std::size_t>(params_.cluster_size);
  }
  /// Total trace-buffer capacity in bits.
  std::size_t trace_bits_capacity() const {
    return num_brams() * static_cast<std::size_t>(params_.bram_kbits) * 1024;
  }

  std::string describe() const;

 private:
  ArchParams params_;
  int width_ = 0;
  int height_ = 0;
  std::vector<TileKind> tiles_;  // row-major
  std::vector<std::pair<int, int>> clb_positions_;
  std::vector<std::pair<int, int>> bram_positions_;
  std::vector<std::pair<int, int>> io_positions_;
};

}  // namespace fpgadbg::arch
