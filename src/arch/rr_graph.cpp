#include "arch/rr_graph.h"

#include "support/error.h"

namespace fpgadbg::arch {

RRGraph::RRGraph(const Device& device, int width, int height, int tracks)
    : device_(device), width_(width), height_(height), tracks_(tracks) {}

void RRGraph::use_owned() {
  nodes_ = nodes_owned_.data();
  num_nodes_ = nodes_owned_.size();
  edges_ = edges_owned_.data();
  num_edges_ = edges_owned_.size();
  edge_offsets_ = edge_offsets_owned_.data();
}

RRGraph::RRGraph(const Device& device)
    : RRGraph(device, device.width(), device.height(),
              device.params().channel_width) {
  const std::size_t ntiles = static_cast<std::size_t>(width_ * height_);
  const std::size_t nwires = ntiles * static_cast<std::size_t>(tracks_);
  nodes_owned_.reserve(2 * ntiles + 2 * nwires);

  const auto push = [&](RRKind kind, int x, int y, int track, int capacity) {
    nodes_owned_.push_back(RRNode{static_cast<std::int16_t>(x),
                                  static_cast<std::int16_t>(y),
                                  static_cast<std::int16_t>(track),
                                  static_cast<std::int16_t>(capacity), kind});
  };

  // Each BLE exposes both its LUT output and its FF (Q) output, so a
  // cluster can source up to 2N distinct signals.
  const int n_out = 2 * device.params().cluster_size;
  const int n_in = device.params().effective_cluster_inputs();

  base_opin_ = 0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) push(RRKind::kOpin, x, y, -1, n_out);
  }
  base_ipin_ = static_cast<RRNodeId>(nodes_owned_.size());
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) push(RRKind::kIpin, x, y, -1, n_in);
  }
  base_chanx_ = static_cast<RRNodeId>(nodes_owned_.size());
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      for (int t = 0; t < tracks_; ++t) push(RRKind::kChanX, x, y, t, 1);
    }
  }
  base_chany_ = static_cast<RRNodeId>(nodes_owned_.size());
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      for (int t = 0; t < tracks_; ++t) push(RRKind::kChanY, x, y, t, 1);
    }
  }

  // Collect edges in construction order, then pack them into CSR form:
  // counting sort by source node, preserving insertion order within a node.
  std::vector<RREdge> raw;
  raw.reserve(nwires * 10);
  const auto add_edge = [&](RRNodeId from, RRNodeId to) {
    raw.push_back(RREdge{from, to});
  };

  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const RRNodeId opin = opin_at(x, y);
      const RRNodeId ipin = ipin_at(x, y);
      for (int t = 0; t < tracks_; ++t) {
        const RRNodeId cx = chanx_at(x, y, t);
        const RRNodeId cy = chany_at(x, y, t);
        // Block output onto both channels.
        add_edge(opin, cx);
        add_edge(opin, cy);
        // Wires into the block input.
        add_edge(cx, ipin);
        add_edge(cy, ipin);
        // Wires into the neighbouring block's input (a wire borders two
        // tiles).
        if (x + 1 < width_) add_edge(cx, ipin_at(x + 1, y));
        if (y + 1 < height_) add_edge(cy, ipin_at(x, y + 1));
        // Wire continuation.
        if (x + 1 < width_) {
          add_edge(cx, chanx_at(x + 1, y, t));
          add_edge(chanx_at(x + 1, y, t), cx);
        }
        if (y + 1 < height_) {
          add_edge(cy, chany_at(x, y + 1, t));
          add_edge(chany_at(x, y + 1, t), cy);
        }
        // Wilton-lite turns within the switch box.
        const int turn = (t + 1) % tracks_;
        add_edge(cx, chany_at(x, y, turn));
        add_edge(chany_at(x, y, turn), cx);
      }
    }
  }

  edge_offsets_owned_.assign(nodes_owned_.size() + 1, 0);
  for (const RREdge& e : raw) ++edge_offsets_owned_[e.from + 1];
  for (std::size_t n = 1; n <= nodes_owned_.size(); ++n) {
    edge_offsets_owned_[n] += edge_offsets_owned_[n - 1];
  }
  edges_owned_.resize(raw.size());
  std::vector<RREdgeId> cursor(edge_offsets_owned_.begin(),
                               edge_offsets_owned_.end() - 1);
  for (const RREdge& e : raw) edges_owned_[cursor[e.from]++] = e;
  use_owned();
}

support::Result<std::unique_ptr<RRGraph>> RRGraph::adopt(
    const Device& device, const RRNode* nodes, std::size_t num_nodes,
    const RREdge* edges, std::size_t num_edges, const RREdgeId* edge_offsets,
    std::size_t num_offsets, std::shared_ptr<const void> backing) {
  using support::Status;
  const int width = device.width();
  const int height = device.height();
  const int tracks = device.params().channel_width;
  const std::size_t ntiles = static_cast<std::size_t>(width) *
                             static_cast<std::size_t>(height);
  const std::size_t expected_nodes =
      2 * ntiles + 2 * ntiles * static_cast<std::size_t>(tracks);
  if (num_nodes != expected_nodes) {
    return Status::corrupt_artifact(
        "rr-graph artifact: node count does not match the device geometry");
  }
  if (num_offsets != num_nodes + 1) {
    return Status::corrupt_artifact(
        "rr-graph artifact: CSR offset array has the wrong length");
  }
  if (edge_offsets[0] != 0 || edge_offsets[num_nodes] != num_edges) {
    return Status::corrupt_artifact(
        "rr-graph artifact: CSR offsets do not cover the edge array");
  }
  for (std::size_t n = 0; n < num_nodes; ++n) {
    if (edge_offsets[n] > edge_offsets[n + 1]) {
      return Status::corrupt_artifact(
          "rr-graph artifact: CSR offsets are not monotone");
    }
  }
  for (std::size_t e = 0; e < num_edges; ++e) {
    if (edges[e].from >= num_nodes || edges[e].to >= num_nodes) {
      return Status::corrupt_artifact(
          "rr-graph artifact: edge endpoint out of range");
    }
  }

  std::unique_ptr<RRGraph> rr(new RRGraph(device, width, height, tracks));
  rr->nodes_ = nodes;
  rr->num_nodes_ = num_nodes;
  rr->edges_ = edges;
  rr->num_edges_ = num_edges;
  rr->edge_offsets_ = edge_offsets;
  rr->backing_ = std::move(backing);
  rr->base_opin_ = 0;
  rr->base_ipin_ = static_cast<RRNodeId>(ntiles);
  rr->base_chanx_ = static_cast<RRNodeId>(2 * ntiles);
  rr->base_chany_ = static_cast<RRNodeId>(
      2 * ntiles + ntiles * static_cast<std::size_t>(tracks));
  return rr;
}

RRNodeId RRGraph::opin_at(int x, int y) const {
  FPGADBG_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_, "opin range");
  return base_opin_ + static_cast<RRNodeId>(y * width_ + x);
}

RRNodeId RRGraph::ipin_at(int x, int y) const {
  FPGADBG_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_, "ipin range");
  return base_ipin_ + static_cast<RRNodeId>(y * width_ + x);
}

RRNodeId RRGraph::chanx_at(int x, int y, int track) const {
  FPGADBG_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_ && track >= 0 &&
                     track < tracks_,
                 "chanx range");
  return base_chanx_ +
         static_cast<RRNodeId>((y * width_ + x) * tracks_ + track);
}

RRNodeId RRGraph::chany_at(int x, int y, int track) const {
  FPGADBG_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_ && track >= 0 &&
                     track < tracks_,
                 "chany range");
  return base_chany_ +
         static_cast<RRNodeId>((y * width_ + x) * tracks_ + track);
}

}  // namespace fpgadbg::arch
