// TRoute: PathFinder negotiated-congestion routing with tuneable sharing.
//
// Standard PathFinder (rip-up & re-route with growing present-congestion
// penalties and history costs), extended with the paper's key routing
// property: nets in the same *exclusive group* are parameter alternatives —
// at any moment only one of them is configured into the fabric — so they may
// occupy the same wires without conflict.  Occupancy therefore counts
// distinct groups per routing resource, not distinct nets.  This is what
// produces the ~3x wire reduction of §V-C1.
//
// The search stack layers four compounding optimisations over the classic
// algorithm (VPR / nextpnr-router2 lineage, see DESIGN.md "Router"):
//   * A* wavefront expansion with an admissible geometric lookahead,
//   * per-net expansion bounding boxes that grow on routing failure,
//   * incremental rip-up: after iteration 1 only nets crossing an overused
//     node are rerouted,
//   * parallel routing of spatially disjoint net bins on a thread pool,
//     bit-identical for every thread count.
//
// Timing-driven mode (TimingOptions.timing_driven) blends a per-connection
// criticality term into the node cost — critical sinks buy short wires,
// non-critical sinks absorb congestion — with the STA refreshed once per
// iteration at the sequential barrier, so determinism across thread counts
// is untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/frames.h"
#include "arch/rr_graph.h"
#include "pnr/nets.h"
#include "pnr/place.h"
#include "pnr/timing.h"

namespace fpgadbg::pnr {

struct RouteOptions {
  int max_iterations = 40;
  double pres_fac_init = 0.6;
  double pres_fac_mult = 1.6;
  double hist_fac = 0.4;
  /// Weight on the A* geometric lookahead.  1.0 keeps the heuristic
  /// admissible (search returns the same minimum-cost paths as Dijkstra);
  /// larger values trade path optimality for fewer heap pops; 0 disables
  /// the lookahead entirely (plain Dijkstra).
  double astar_fac = 1.0;
  /// Initial margin (in tiles) added around a net's terminal bounding box.
  /// The box doubles its margin every time the net fails to route inside it.
  /// Negative disables bounding boxes (every net may expand device-wide).
  int bb_margin = 3;
  /// After iteration 1, rip up and reroute only nets whose current route
  /// crosses an overused node.  false restores the classic full rip-up of
  /// every net on every iteration.
  bool incremental = true;
  /// Worker threads for routing spatially disjoint net bins concurrently.
  /// 0 = auto: the FPGADBG_THREADS environment variable if set, else the
  /// hardware concurrency.  The result is bit-identical for every value.
  int route_threads = 0;
};

struct RouteResult {
  bool success = false;
  int iterations = 0;
  /// RR edges per net (same order as the input nets).
  std::vector<std::vector<arch::RREdgeId>> routes;
  /// Distinct CHANX/CHANY nodes carrying at least one net.
  std::size_t wire_nodes_used = 0;
  /// Sum of per-wire occupancy (shared group segments count once).
  std::size_t total_wirelength = 0;
  double runtime_seconds = 0.0;
  // Search-effort counters (deterministic given options, but — like
  // runtime_seconds — not part of the serialized route artifact).
  std::size_t rerouted_nets = 0;    ///< net routings summed over iterations
  std::size_t heap_pops = 0;        ///< priority-queue pops over all searches
  std::size_t bbox_expansions = 0;  ///< bounding-box growths on failure
};

RouteResult route(const arch::RRGraph& rr, const map::MappedNetlist& mn,
                  const Packing& packing, const NetExtraction& nets,
                  const Placement& placement, const RouteOptions& options = {},
                  const TimingOptions& timing = {});

}  // namespace fpgadbg::pnr
