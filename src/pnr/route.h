// TRoute: PathFinder negotiated-congestion routing with tuneable sharing.
//
// Standard PathFinder (rip-up & re-route with growing present-congestion
// penalties and history costs), extended with the paper's key routing
// property: nets in the same *exclusive group* are parameter alternatives —
// at any moment only one of them is configured into the fabric — so they may
// occupy the same wires without conflict.  Occupancy therefore counts
// distinct groups per routing resource, not distinct nets.  This is what
// produces the ~3x wire reduction of §V-C1.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/frames.h"
#include "arch/rr_graph.h"
#include "pnr/nets.h"
#include "pnr/place.h"

namespace fpgadbg::pnr {

struct RouteOptions {
  int max_iterations = 40;
  double pres_fac_init = 0.6;
  double pres_fac_mult = 1.6;
  double hist_fac = 0.4;
};

struct RouteResult {
  bool success = false;
  int iterations = 0;
  /// RR edges per net (same order as the input nets).
  std::vector<std::vector<arch::RREdgeId>> routes;
  /// Distinct CHANX/CHANY nodes carrying at least one net.
  std::size_t wire_nodes_used = 0;
  /// Sum of per-wire occupancy (shared group segments count once).
  std::size_t total_wirelength = 0;
  double runtime_seconds = 0.0;
};

RouteResult route(const arch::RRGraph& rr, const map::MappedNetlist& mn,
                  const Packing& packing, const NetExtraction& nets,
                  const Placement& placement,
                  const RouteOptions& options = {});

}  // namespace fpgadbg::pnr
