#include "pnr/place.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "support/error.h"
#include "support/rng.h"

namespace fpgadbg::pnr {

using map::CellId;
using map::kNullCell;
using map::MappedNetlist;
using map::MKind;

std::pair<int, int> Placement::cell_pos(const MappedNetlist& mn,
                                        const Packing& packing,
                                        CellId cell) const {
  // Latch outputs are co-located with their driver (the FF shares the BLE).
  CellId cur = cell;
  for (int hops = 0; hops < 64; ++hops) {
    const MKind k = mn.cell(cur).kind;
    if (k == MKind::kLatchOut) {
      for (const auto& latch : mn.latches()) {
        if (latch.output == cur) {
          cur = latch.input;
          break;
        }
      }
      if (cur == cell) break;  // unresolved
      continue;
    }
    const int cl = packing.cluster_of[cur];
    if (cl >= 0) return cluster_pos[static_cast<std::size_t>(cl)];
    if (auto it = io_of_cell.find(cur); it != io_of_cell.end()) {
      return it->second;
    }
    break;
  }
  return {0, 0};  // constants and unresolved endpoints park at the corner
}

namespace {

struct NetGeom {
  // Endpoint = either a movable cluster (index >= 0) or a fixed position.
  std::vector<int> clusters;                  // movable endpoints
  std::vector<std::pair<int, int>> fixed;     // immovable endpoints
};

double hpwl(const NetGeom& net,
            const std::vector<std::pair<int, int>>& cluster_pos) {
  int min_x = 1 << 20, max_x = -1, min_y = 1 << 20, max_y = -1;
  auto absorb = [&](std::pair<int, int> p) {
    min_x = std::min(min_x, p.first);
    max_x = std::max(max_x, p.first);
    min_y = std::min(min_y, p.second);
    max_y = std::max(max_y, p.second);
  };
  for (int c : net.clusters) absorb(cluster_pos[static_cast<std::size_t>(c)]);
  for (const auto& p : net.fixed) absorb(p);
  if (max_x < 0) return 0.0;
  return static_cast<double>((max_x - min_x) + (max_y - min_y));
}

/// Analytic placement seed (HeAP spirit, Jacobi form): every cluster moves to
/// the weighted centroid of the centroids of its nets, with the fixed IO/BRAM
/// endpoints anchoring the system so it does not collapse to a point.  Pure
/// sequential arithmetic over deterministic inputs — fully reproducible.
std::vector<std::pair<double, double>> analytic_positions(
    const std::vector<NetGeom>& geoms,
    const std::vector<std::vector<std::size_t>>& nets_of_cluster,
    const std::vector<double>& net_weight, const arch::Device& device,
    int iterations) {
  const std::size_t num_clusters = nets_of_cluster.size();
  // Start everything at the CLB-region center.
  double cx = 0.0, cy = 0.0;
  const auto& clbs = device.clb_positions();
  for (const auto& p : clbs) {
    cx += p.first;
    cy += p.second;
  }
  if (!clbs.empty()) {
    cx /= static_cast<double>(clbs.size());
    cy /= static_cast<double>(clbs.size());
  }
  std::vector<std::pair<double, double>> pos(num_clusters, {cx, cy});
  std::vector<std::pair<double, double>> next(num_clusters);

  for (int it = 0; it < iterations; ++it) {
    for (std::size_t c = 0; c < num_clusters; ++c) {
      double sx = 0.0, sy = 0.0, sw = 0.0;
      for (std::size_t n : nets_of_cluster[c]) {
        const NetGeom& g = geoms[n];
        // Net centroid over the other endpoints (self included is fine: it
        // only damps the update, it cannot bias the fixed point).
        double nx = 0.0, ny = 0.0;
        const std::size_t ends = g.clusters.size() + g.fixed.size();
        if (ends == 0) continue;
        for (int other : g.clusters) {
          nx += pos[static_cast<std::size_t>(other)].first;
          ny += pos[static_cast<std::size_t>(other)].second;
        }
        for (const auto& f : g.fixed) {
          nx += f.first;
          ny += f.second;
        }
        const double w = net_weight.empty() ? 1.0 : net_weight[n];
        sx += w * nx / static_cast<double>(ends);
        sy += w * ny / static_cast<double>(ends);
        sw += w;
      }
      next[c] = sw > 0.0 ? std::pair<double, double>{sx / sw, sy / sw}
                         : std::pair<double, double>{cx, cy};
    }
    pos.swap(next);
  }
  return pos;
}

/// Snaps analytic positions to distinct CLB tiles: clusters are visited in a
/// deterministic spatial order and each takes the nearest still-free slot
/// (squared distance, ties by slot order — the device's position list is
/// itself deterministic).
std::vector<std::pair<int, int>> legalize(
    const std::vector<std::pair<double, double>>& desired,
    const std::vector<std::pair<int, int>>& slots) {
  std::vector<std::size_t> order(desired.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (desired[a].first != desired[b].first) {
      return desired[a].first < desired[b].first;
    }
    if (desired[a].second != desired[b].second) {
      return desired[a].second < desired[b].second;
    }
    return a < b;
  });
  std::vector<char> taken(slots.size(), 0);
  std::vector<std::pair<int, int>> result(desired.size(), {0, 0});
  for (std::size_t c : order) {
    double best = 0.0;
    std::size_t best_slot = slots.size();
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (taken[s]) continue;
      const double dx = desired[c].first - slots[s].first;
      const double dy = desired[c].second - slots[s].second;
      const double d = dx * dx + dy * dy;
      if (best_slot == slots.size() || d < best) {
        best = d;
        best_slot = s;
      }
    }
    FPGADBG_ASSERT(best_slot < slots.size(), "legalize: out of CLB slots");
    taken[best_slot] = 1;
    result[c] = slots[best_slot];
  }
  return result;
}

}  // namespace

Placement place(const MappedNetlist& mn, const Packing& packing,
                const NetExtraction& nets, const arch::Device& device,
                const PlaceOptions& options, const TimingOptions& timing) {
  FPGADBG_REQUIRE(packing.num_clusters() <= device.num_clbs(),
                  "design does not fit: " +
                      std::to_string(packing.num_clusters()) + " clusters > " +
                      std::to_string(device.num_clbs()) + " CLBs");
  Rng rng(options.seed);
  Placement pl;

  // --- fixed assignments -----------------------------------------------
  const auto& ios = device.io_positions();
  std::size_t io_cursor = 0;
  auto next_io = [&]() {
    const auto pos = ios[io_cursor % ios.size()];
    ++io_cursor;
    return pos;
  };
  for (CellId id : mn.inputs()) pl.io_of_cell[id] = next_io();
  for (CellId id : mn.params()) pl.io_of_cell[id] = next_io();
  pl.io_of_output.resize(mn.outputs().size());
  for (std::size_t i = 0; i < mn.outputs().size(); ++i) {
    pl.io_of_output[i] = next_io();
  }

  std::size_t lanes = 0;
  for (std::size_t lane_idx : nets.trace_lane_of_output) {
    if (lane_idx != static_cast<std::size_t>(-1)) {
      lanes = std::max(lanes, lane_idx + 1);
    }
  }
  pl.bram_of_lane.resize(lanes);
  const auto& brams = device.bram_positions();
  for (std::size_t l = 0; l < lanes; ++l) {
    pl.bram_of_lane[l] =
        brams.empty() ? next_io() : brams[l % brams.size()];
  }

  // --- net geometry ------------------------------------------------------
  std::vector<NetGeom> geoms;
  geoms.reserve(nets.nets.size());
  std::vector<std::vector<std::size_t>> nets_of_cluster(
      packing.num_clusters());
  auto endpoint = [&](CellId cell, NetGeom* geom) {
    // Resolve through latch co-location like Placement::cell_pos but
    // classifying cluster endpoints as movable.
    CellId cur = cell;
    for (int hops = 0; hops < 64; ++hops) {
      if (mn.cell(cur).kind == MKind::kLatchOut) {
        CellId next = cur;
        for (const auto& latch : mn.latches()) {
          if (latch.output == cur) {
            next = latch.input;
            break;
          }
        }
        if (next == cur) break;
        cur = next;
        continue;
      }
      const int cl = packing.cluster_of[cur];
      if (cl >= 0) {
        geom->clusters.push_back(cl);
        return;
      }
      if (auto it = pl.io_of_cell.find(cur); it != pl.io_of_cell.end()) {
        geom->fixed.push_back(it->second);
        return;
      }
      break;
    }
    geom->fixed.emplace_back(0, 0);
  };
  for (const PhysNet& net : nets.nets) {
    NetGeom geom;
    endpoint(net.driver, &geom);
    for (const NetSink& sink : net.sinks) {
      switch (sink.kind) {
        case SinkKind::kCellPin:
          endpoint(sink.cell, &geom);
          break;
        case SinkKind::kPrimaryOutput:
          geom.fixed.push_back(pl.io_of_output[sink.index]);
          break;
        case SinkKind::kTraceBuffer:
          geom.fixed.push_back(pl.bram_of_lane[sink.index]);
          break;
      }
    }
    std::sort(geom.clusters.begin(), geom.clusters.end());
    geom.clusters.erase(
        std::unique(geom.clusters.begin(), geom.clusters.end()),
        geom.clusters.end());
    const std::size_t net_index = geoms.size();
    for (int c : geom.clusters) {
      nets_of_cluster[static_cast<std::size_t>(c)].push_back(net_index);
    }
    geoms.push_back(std::move(geom));
  }

  // --- timing: criticality-derived net weights ---------------------------
  // Timing-driven cost per net is hpwl * ((1-λ) + λ·crit^crit_exp): the
  // geometric extent IS the delay estimate at this fidelity, so weighting the
  // extent by criticality is exactly the blended (1-λ)·HPWL + λ·crit·delay of
  // the classic formulation, net by net.  Wirelength-driven runs keep every
  // weight at 1 and never build the analyzer.
  std::unique_ptr<TimingAnalyzer> sta;
  std::vector<double> net_weight;
  auto refresh_weights = [&]() {
    if (!sta) return;
    if (!pl.cluster_pos.empty()) {
      sta->use_placed_delays(packing, pl);
    }
    sta->update();
    const double lambda = timing.place_tradeoff;
    for (std::size_t n = 0; n < geoms.size(); ++n) {
      net_weight[n] = (1.0 - lambda) +
                      lambda * std::pow(sta->net_criticality(n),
                                        timing.crit_exp);
    }
  };
  if (timing.timing_driven) {
    sta = std::make_unique<TimingAnalyzer>(mn, nets, timing.delays);
    net_weight.assign(geoms.size(), 1.0);
    // Pre-place fidelity: fanout-estimated criticality seeds the analytic
    // pass before any position exists.
    refresh_weights();
  }

  // --- initial cluster placement -----------------------------------------
  std::vector<std::pair<int, int>> slots = device.clb_positions();
  if (options.analytic_seed && packing.num_clusters() > 0) {
    const auto desired =
        analytic_positions(geoms, nets_of_cluster, net_weight, device,
                           options.seed_iterations);
    pl.cluster_pos = legalize(desired, slots);
  } else {
    rng.shuffle(slots);
    pl.cluster_pos.assign(packing.num_clusters(), {0, 0});
    for (std::size_t c = 0; c < packing.num_clusters(); ++c) {
      pl.cluster_pos[c] = slots[c];
    }
  }

  auto final_hpwl = [&]() {
    double wl = 0.0;
    for (const NetGeom& g : geoms) wl += hpwl(g, pl.cluster_pos);
    return wl;
  };

  if (packing.num_clusters() <= 1) {
    pl.total_hpwl = final_hpwl();
    return pl;
  }

  // Placed fidelity is now available: re-derive the weights the annealer
  // will price moves against.
  refresh_weights();

  std::vector<double> net_cost(geoms.size());
  double total = 0.0;
  auto weighted = [&](std::size_t n) {
    const double w = net_weight.empty() ? 1.0 : net_weight[n];
    return w * hpwl(geoms[n], pl.cluster_pos);
  };
  auto rebase_costs = [&]() {
    total = 0.0;
    for (std::size_t n = 0; n < geoms.size(); ++n) {
      net_cost[n] = weighted(n);
      total += net_cost[n];
    }
  };
  rebase_costs();

  // --- simulated annealing ----------------------------------------------
  // Which slot (if any) holds each position is tracked via a map from
  // position to cluster.
  std::unordered_map<std::uint64_t, int> occupant;
  auto pos_key = [](std::pair<int, int> p) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.first))
            << 32) |
           static_cast<std::uint32_t>(p.second);
  };
  for (std::size_t c = 0; c < pl.cluster_pos.size(); ++c) {
    occupant[pos_key(pl.cluster_pos[c])] = static_cast<int>(c);
  }

  auto delta_for = [&](const std::vector<std::size_t>& affected) {
    double delta = 0.0;
    for (std::size_t n : affected) {
      delta += weighted(n) - net_cost[n];
    }
    return delta;
  };

  auto affected_nets = [&](int a, int b) {
    std::vector<std::size_t> affected = nets_of_cluster[static_cast<std::size_t>(a)];
    if (b >= 0) {
      affected.insert(affected.end(),
                      nets_of_cluster[static_cast<std::size_t>(b)].begin(),
                      nets_of_cluster[static_cast<std::size_t>(b)].end());
      std::sort(affected.begin(), affected.end());
      affected.erase(std::unique(affected.begin(), affected.end()),
                     affected.end());
    }
    return affected;
  };

  // Estimate the initial temperature from random move deltas.
  double sum_abs = 0.0;
  int samples = 0;
  for (int i = 0; i < 50; ++i) {
    const int a = static_cast<int>(rng.next_below(packing.num_clusters()));
    const auto target = device.clb_positions()[rng.next_below(
        device.clb_positions().size())];
    const auto old_pos = pl.cluster_pos[static_cast<std::size_t>(a)];
    const auto it = occupant.find(pos_key(target));
    const int b = it == occupant.end() ? -1 : it->second;
    if (b == a) continue;
    const auto affected = affected_nets(a, b);
    pl.cluster_pos[static_cast<std::size_t>(a)] = target;
    if (b >= 0) pl.cluster_pos[static_cast<std::size_t>(b)] = old_pos;
    sum_abs += std::abs(delta_for(affected));
    pl.cluster_pos[static_cast<std::size_t>(a)] = old_pos;
    if (b >= 0) pl.cluster_pos[static_cast<std::size_t>(b)] = target;
    ++samples;
  }
  // A cold random start needs enough heat to escape it; the analytic seed is
  // already in a good basin, so the anneal starts at a quarter of that and
  // refines instead of scrambling.
  const double heat = options.analytic_seed ? 0.5 : 2.0;
  const double floor = options.analytic_seed ? 0.25 : 1.0;
  double temperature =
      samples > 0 ? std::max(floor, heat * sum_abs / samples) : floor;

  const std::size_t moves_per_step = std::max<std::size_t>(
      16, static_cast<std::size_t>(
              options.moves_per_cell *
              std::sqrt(static_cast<double>(packing.num_clusters()))));

  while (temperature > options.exit_temperature *
                           std::max(1.0, total /
                                             std::max<std::size_t>(
                                                 1, geoms.size()))) {
    std::size_t accepted = 0;
    for (std::size_t m = 0; m < moves_per_step; ++m) {
      const int a = static_cast<int>(rng.next_below(packing.num_clusters()));
      const auto target = device.clb_positions()[rng.next_below(
          device.clb_positions().size())];
      const auto old_pos = pl.cluster_pos[static_cast<std::size_t>(a)];
      if (target == old_pos) continue;
      const auto it = occupant.find(pos_key(target));
      const int b = it == occupant.end() ? -1 : it->second;
      const auto affected = affected_nets(a, b);

      pl.cluster_pos[static_cast<std::size_t>(a)] = target;
      if (b >= 0) pl.cluster_pos[static_cast<std::size_t>(b)] = old_pos;
      const double delta = delta_for(affected);

      const bool accept =
          delta <= 0.0 || rng.next_double() < std::exp(-delta / temperature);
      if (accept) {
        for (std::size_t n : affected) {
          const double fresh = weighted(n);
          total += fresh - net_cost[n];
          net_cost[n] = fresh;
        }
        occupant.erase(pos_key(old_pos));
        occupant[pos_key(target)] = a;
        if (b >= 0) occupant[pos_key(old_pos)] = b;
        ++accepted;
      } else {
        pl.cluster_pos[static_cast<std::size_t>(a)] = old_pos;
        if (b >= 0) pl.cluster_pos[static_cast<std::size_t>(b)] = target;
      }
    }
    // VPR-style adaptive cooling.
    const double ratio =
        static_cast<double>(accepted) / static_cast<double>(moves_per_step);
    double alpha;
    if (ratio > 0.96) {
      alpha = 0.5;
    } else if (ratio > 0.8) {
      alpha = 0.9;
    } else if (ratio > 0.15) {
      alpha = 0.95;
    } else {
      alpha = 0.8;
    }
    temperature *= alpha;
    // Criticality drifts as the placement moves; refresh the weights (and
    // re-baseline the incremental costs against them) once per temperature
    // step — the sweep is O(cells + nets), far below the move loop's cost.
    if (sta) {
      refresh_weights();
      rebase_costs();
    }
  }

  pl.total_hpwl = final_hpwl();
  return pl;
}

}  // namespace fpgadbg::pnr
