#include "pnr/flow.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"
#include "support/log.h"
#include "support/stopwatch.h"
#include "support/telemetry.h"

namespace fpgadbg::pnr {

CompiledDesign compile(map::MappedNetlist mn,
                       const std::vector<std::string>& trace_output_names,
                       const CompileOptions& options) {
  CompiledDesign design;
  design.netlist = std::move(mn);
  const map::MappedNetlist& net = design.netlist;

  telemetry::MetricsRegistry& m = telemetry::metrics();
  Stopwatch total_timer;
  Stopwatch stage_timer;

  {
    telemetry::TraceScope span("pnr.pack");
    design.packing = pack(net, options.arch);
  }
  design.report.pack_seconds =
      m.histogram("pnr.pack_seconds").observe(stage_timer.elapsed_seconds());

  const std::size_t min_clbs = std::max<std::size_t>(
      4, static_cast<std::size_t>(
             std::ceil(static_cast<double>(design.packing.num_clusters()) *
                       options.device_slack)));
  design.device = std::make_unique<arch::Device>(options.arch, min_clbs);
  design.rr = std::make_unique<arch::RRGraph>(*design.device);
  design.frames =
      std::make_unique<arch::FrameGeometry>(*design.device, *design.rr);
  LOG_INFO << "compile: " << design.device->describe() << ", "
           << design.packing.num_clusters() << " clusters";

  design.nets = extract_nets(net, trace_output_names);

  stage_timer.restart();
  {
    telemetry::TraceScope span("pnr.place");
    design.placement = place(net, design.packing, design.nets, *design.device,
                             options.place, options.timing);
  }
  design.report.place_seconds =
      m.histogram("pnr.place_seconds").observe(stage_timer.elapsed_seconds());

  stage_timer.restart();
  {
    telemetry::TraceScope span("pnr.route");
    design.routing = route(*design.rr, net, design.packing, design.nets,
                           design.placement, options.route, options.timing);
  }
  design.report.route_seconds =
      m.histogram("pnr.route_seconds").observe(stage_timer.elapsed_seconds());

  design.report.device = design.device->describe();
  design.report.clbs_used = design.packing.num_clusters();
  design.report.luts = net.lut_area();
  design.report.tcons = net.count(map::MKind::kTcon);
  design.report.nets = design.nets.nets.size();
  design.report.route_success = design.routing.success;
  design.report.route_iterations = design.routing.iterations;
  design.report.wire_nodes_used = design.routing.wire_nodes_used;
  design.report.total_wirelength = design.routing.total_wirelength;
  finalize_timing(design, options.timing);
  design.report.total_seconds = total_timer.elapsed_seconds();
  return design;
}

void finalize_timing(CompiledDesign& design, const TimingOptions& timing) {
  telemetry::TraceScope span("pnr.timing");
  const TimingReport sta = analyze_timing(design, timing.delays);
  design.report.timing_driven = timing.timing_driven;
  design.report.critical_path_ns = sta.critical_path_ns;
  design.report.max_frequency_mhz = sta.max_frequency_mhz;
  design.report.worst_slack_ns = sta.worst_slack_ns;
  // Named so the Prometheus exposition yields exactly fpgadbg_timing_fmax_mhz.
  telemetry::metrics().gauge("timing.fmax_mhz").set(sta.max_frequency_mhz);
  telemetry::metrics()
      .gauge("timing.critical_path_ns")
      .set(sta.critical_path_ns);
}

support::Result<CompiledDesign> try_compile(
    map::MappedNetlist mn, const std::vector<std::string>& trace_output_names,
    const CompileOptions& options) {
  try {
    return compile(std::move(mn), trace_output_names, options);
  } catch (...) {
    return support::status_from_current_exception();
  }
}

}  // namespace fpgadbg::pnr
