// TPack: greedy clustering of LUT/TLUT cells into CLBs.
//
// Classic VPR-style packing: seed each cluster with the unclustered cell of
// highest connectivity, then greedily absorb cells that share the most nets
// with the cluster while the BLE count and distinct-input limits hold.
// TCON cells occupy no BLE (they live in the routing fabric), which is why
// the proposed flow needs ~4x fewer CLBs on instrumented designs (§V-C1).
#pragma once

#include <vector>

#include "arch/device.h"
#include "map/mapped_netlist.h"

namespace fpgadbg::pnr {

struct Cluster {
  std::vector<map::CellId> bles;  ///< LUT/TLUT cells packed here
};

struct Packing {
  std::vector<Cluster> clusters;
  /// Cluster index per cell; -1 for sources and TCONs.
  std::vector<int> cluster_of;

  std::size_t num_clusters() const { return clusters.size(); }
};

Packing pack(const map::MappedNetlist& mn, const arch::ArchParams& params);

}  // namespace fpgadbg::pnr
