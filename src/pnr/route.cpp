#include "pnr/route.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "support/error.h"
#include "support/log.h"
#include "support/stopwatch.h"
#include "support/telemetry.h"

namespace fpgadbg::pnr {

using arch::RREdgeId;
using arch::RRGraph;
using arch::RRKind;
using arch::RRNodeId;
using map::MappedNetlist;

namespace {

/// Group-aware occupancy of one RR node: a short list of (group, count).
/// Ungrouped nets use unique synthetic group ids so each counts separately.
struct NodeOcc {
  std::vector<std::pair<int, int>> groups;

  int occupancy() const { return static_cast<int>(groups.size()); }

  bool holds(int group) const {
    for (const auto& [g, c] : groups) {
      if (g == group) return true;
    }
    return false;
  }
  void add(int group) {
    for (auto& [g, c] : groups) {
      if (g == group) {
        ++c;
        return;
      }
    }
    groups.emplace_back(group, 1);
  }
  void remove(int group) {
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (groups[i].first == group) {
        if (--groups[i].second == 0) {
          groups[i] = groups.back();
          groups.pop_back();
        }
        return;
      }
    }
    FPGADBG_ASSERT(false, "removing absent group from RR node");
  }
};

struct QueueEntry {
  double cost;
  RRNodeId node;
  bool operator>(const QueueEntry& o) const { return cost > o.cost; }
};

}  // namespace

RouteResult route(const RRGraph& rr, const MappedNetlist& mn,
                  const Packing& packing, const NetExtraction& nets,
                  const Placement& placement, const RouteOptions& options) {
  Stopwatch timer;
  RouteResult result;
  result.routes.resize(nets.nets.size());

  // Net terminals in RR space.
  struct Terminals {
    RRNodeId source;
    std::vector<RRNodeId> sinks;
    int group;
    int source_group;  ///< keyed by driver: all fanout nets share the OPIN
  };
  std::vector<Terminals> terms(nets.nets.size());
  for (std::size_t n = 0; n < nets.nets.size(); ++n) {
    const PhysNet& net = nets.nets[n];
    const auto dpos = placement.cell_pos(mn, packing, net.driver);
    Terminals t;
    t.source = rr.opin_at(dpos.first, dpos.second);
    t.group = net.exclusive_group >= 0
                  ? net.exclusive_group
                  : -(static_cast<int>(n) + 2);  // unique synthetic group
    // A physical output pin drives arbitrary fanout: every net of the same
    // driver occupies the OPIN once, together.
    t.source_group = -(static_cast<int>(net.driver) + 2);
    std::unordered_set<RRNodeId> seen;
    for (const NetSink& sink : net.sinks) {
      std::pair<int, int> pos;
      switch (sink.kind) {
        case SinkKind::kCellPin:
          pos = placement.cell_pos(mn, packing, sink.cell);
          break;
        case SinkKind::kPrimaryOutput:
          pos = placement.io_of_output[sink.index];
          break;
        case SinkKind::kTraceBuffer:
          pos = placement.bram_of_lane[sink.index];
          break;
      }
      if (pos == dpos) continue;  // intra-tile connection: no routing needed
      const RRNodeId ipin = rr.ipin_at(pos.first, pos.second);
      if (seen.insert(ipin).second) t.sinks.push_back(ipin);
    }
    terms[n] = std::move(t);
  }

  std::vector<NodeOcc> occ(rr.num_nodes());
  std::vector<double> history(rr.num_nodes(), 0.0);
  // Per-net node usage (for rip-up).
  std::vector<std::vector<RRNodeId>> net_nodes(nets.nets.size());

  double pres_fac = options.pres_fac_init;

  // Group used by net n on node id: OPINs are keyed by driver (all fanout
  // nets of one driver share the physical pin), everything else by the
  // net's exclusivity group.
  auto group_at = [&](std::size_t n, RRNodeId id) {
    return rr.node(id).kind == RRKind::kOpin ? terms[n].source_group
                                             : terms[n].group;
  };

  auto node_cost = [&](RRNodeId id, int group) {
    const auto& node = rr.node(id);
    int occupancy = occ[id].occupancy();
    if (!occ[id].holds(group)) occupancy += 1;  // cost as if we were added
    const int over = std::max(0, occupancy - node.capacity);
    const double congestion = 1.0 + pres_fac * over;
    return (1.0 + history[id]) * congestion;
  };

  auto rip_up = [&](std::size_t n) {
    for (RRNodeId id : net_nodes[n]) occ[id].remove(group_at(n, id));
    net_nodes[n].clear();
    result.routes[n].clear();
  };

  std::vector<double> dist(rr.num_nodes());
  std::vector<RREdgeId> prev_edge(rr.num_nodes());
  std::vector<std::uint32_t> stamp(rr.num_nodes(), 0);
  std::uint32_t now = 0;
  // Stamped membership of the net currently being routed: tree_stamp[id] ==
  // tree_token iff id is in net_nodes[n].  Replaces a linear scan per
  // walk-back node that made rerouting high-fanout nets O(|tree|^2).
  std::vector<std::uint64_t> tree_stamp(rr.num_nodes(), 0);
  std::uint64_t tree_token = 0;

  static telemetry::Counter& iter_counter =
      telemetry::metrics().counter("pnr.route.iterations");
  static telemetry::Gauge& overuse_gauge =
      telemetry::metrics().gauge("pnr.route.overused_nodes");
  static telemetry::Histogram& iter_hist =
      telemetry::metrics().histogram("pnr.route.iteration_seconds");

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    telemetry::TraceScope iter_span("pnr.route.iteration");
    Stopwatch iter_timer;
    iter_counter.add(1);
    result.iterations = iter;
    bool any_overuse = false;

    for (std::size_t n = 0; n < nets.nets.size(); ++n) {
      if (terms[n].sinks.empty()) continue;
      rip_up(n);

      // Route tree starts at the source; each sink is reached by Dijkstra
      // from the whole current tree (cost 0 inside the tree).
      std::vector<RRNodeId> tree{terms[n].source};
      occ[terms[n].source].add(group_at(n, terms[n].source));
      net_nodes[n].push_back(terms[n].source);
      ++tree_token;
      tree_stamp[terms[n].source] = tree_token;

      for (RRNodeId target : terms[n].sinks) {
        ++now;
        std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                            std::greater<QueueEntry>>
            queue;
        for (RRNodeId t : tree) {
          dist[t] = 0.0;
          stamp[t] = now;
          prev_edge[t] = static_cast<RREdgeId>(-1);
          queue.push(QueueEntry{0.0, t});
        }
        bool reached = false;
        while (!queue.empty()) {
          const QueueEntry top = queue.top();
          queue.pop();
          if (stamp[top.node] == now && top.cost > dist[top.node]) continue;
          if (top.node == target) {
            reached = true;
            break;
          }
          for (RREdgeId e : rr.out_edges(top.node)) {
            const RRNodeId next = rr.edge(e).to;
            // IPINs are only enterable when they are the target (a pin is
            // not a through-route).
            if (rr.node(next).kind == RRKind::kIpin && next != target) {
              continue;
            }
            const double c = top.cost + node_cost(next, group_at(n, next));
            if (stamp[next] != now || c < dist[next]) {
              stamp[next] = now;
              dist[next] = c;
              prev_edge[next] = e;
              queue.push(QueueEntry{c, next});
            }
          }
        }
        if (!reached) {
          // Unroutable sink this iteration; PathFinder keeps negotiating.
          any_overuse = true;
          continue;
        }
        // Walk back, adding new nodes to the tree.
        RRNodeId cur = target;
        while (prev_edge[cur] != static_cast<RREdgeId>(-1)) {
          const RREdgeId e = prev_edge[cur];
          result.routes[n].push_back(e);
          if (tree_stamp[cur] != tree_token) {
            tree_stamp[cur] = tree_token;
            occ[cur].add(group_at(n, cur));
            net_nodes[n].push_back(cur);
          }
          tree.push_back(cur);
          cur = rr.edge(e).from;
        }
      }
    }

    // Overuse check + history update.
    std::size_t overused_nodes = 0;
    for (RRNodeId id = 0; id < rr.num_nodes(); ++id) {
      const int over = occ[id].occupancy() - rr.node(id).capacity;
      if (over > 0) {
        any_overuse = true;
        ++overused_nodes;
        history[id] += options.hist_fac * over;
      }
    }
    // Congestion trajectory: the negotiation is converging when this gauge
    // falls iteration over iteration.
    overuse_gauge.set(static_cast<double>(overused_nodes));
    iter_hist.observe(iter_timer.elapsed_seconds());
    LOG_DEBUG << "pathfinder iteration " << iter << ": " << overused_nodes
              << " overused nodes, pres_fac " << pres_fac;
    if (!any_overuse) {
      result.success = true;
      break;
    }
    pres_fac *= options.pres_fac_mult;
  }

  // Final statistics over wires.
  for (RRNodeId id = 0; id < rr.num_nodes(); ++id) {
    const RRKind kind = rr.node(id).kind;
    if (kind != RRKind::kChanX && kind != RRKind::kChanY) continue;
    const int users = occ[id].occupancy();
    if (users > 0) {
      ++result.wire_nodes_used;
      result.total_wirelength += static_cast<std::size_t>(users);
    }
  }
  result.runtime_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace fpgadbg::pnr
