#include "pnr/route.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>

#include "support/error.h"
#include "support/log.h"
#include "support/stopwatch.h"
#include "support/strings.h"
#include "support/telemetry.h"
#include "support/thread_pool.h"

namespace fpgadbg::pnr {

using arch::RREdgeId;
using arch::RRGraph;
using arch::RRKind;
using arch::RRNode;
using arch::RRNodeId;
using map::MappedNetlist;

namespace {

/// Group-aware occupancy of one RR node: a short list of (group, count).
/// Ungrouped nets use unique synthetic group ids so each counts separately.
struct NodeOcc {
  std::vector<std::pair<int, int>> groups;

  int occupancy() const { return static_cast<int>(groups.size()); }

  bool holds(int group) const {
    for (const auto& [g, c] : groups) {
      if (g == group) return true;
    }
    return false;
  }
  void add(int group) {
    for (auto& [g, c] : groups) {
      if (g == group) {
        ++c;
        return;
      }
    }
    groups.emplace_back(group, 1);
  }
  void remove(int group) {
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (groups[i].first == group) {
        if (--groups[i].second == 0) {
          groups[i] = groups.back();
          groups.pop_back();
        }
        return;
      }
    }
    FPGADBG_ASSERT(false, "removing absent group from RR node");
  }
};

struct QueueEntry {
  double f;  ///< g + astar_fac * lookahead (== g under plain Dijkstra)
  double g;  ///< accumulated path cost
  RRNodeId node;
  bool operator>(const QueueEntry& o) const { return f > o.f; }
};

/// Inclusive tile-coordinate rectangle.  The router prunes expansion to the
/// net's box, and spatially disjoint boxes touch disjoint RR-node sets (a
/// node is tested against its own (x, y)), which is what makes bin-parallel
/// routing race-free and deterministic.
struct BBox {
  int x0 = 0, y0 = 0, x1 = -1, y1 = -1;

  bool contains(int x, int y) const {
    return x >= x0 && x <= x1 && y >= y0 && y <= y1;
  }
  bool overlaps(const BBox& o) const {
    return x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 && o.y0 <= y1;
  }
  void include(int x, int y) {
    if (x1 < x0) {
      x0 = x1 = x;
      y0 = y1 = y;
      return;
    }
    x0 = std::min(x0, x);
    x1 = std::max(x1, x);
    y0 = std::min(y0, y);
    y1 = std::max(y1, y);
  }
  void merge(const BBox& o) {
    include(o.x0, o.y0);
    include(o.x1, o.y1);
  }
  void clamp(int width, int height) {
    x0 = std::max(x0, 0);
    y0 = std::max(y0, 0);
    x1 = std::min(x1, width - 1);
    y1 = std::min(y1, height - 1);
  }
  bool covers(int width, int height) const {
    return x0 <= 0 && y0 <= 0 && x1 >= width - 1 && y1 >= height - 1;
  }
};

/// Per-search scratch state.  One instance per concurrently routing bin;
/// instances are recycled through a pool (allocating the O(num_nodes)
/// arrays once per worker, not once per net).
struct SearchContext {
  explicit SearchContext(std::size_t num_nodes)
      : dist(num_nodes),
        prev_edge(num_nodes),
        stamp(num_nodes, 0),
        tree_stamp(num_nodes, 0) {}

  std::vector<double> dist;  ///< g cost per node, valid where stamp == now
  std::vector<RREdgeId> prev_edge;
  std::vector<std::uint32_t> stamp;
  std::uint32_t now = 0;
  /// Stamped membership of the net currently being routed: tree_stamp[id] ==
  /// tree_token iff id is in net_nodes[n].  Dedupes both occupancy updates
  /// and the Dijkstra/A* seeds of subsequent sinks (the route tree would
  /// otherwise accumulate duplicate nodes on every walk-back).
  std::vector<std::uint64_t> tree_stamp;
  std::uint64_t tree_token = 0;
};

class ContextPool {
 public:
  explicit ContextPool(std::size_t num_nodes) : num_nodes_(num_nodes) {}

  std::unique_ptr<SearchContext> acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        auto ctx = std::move(free_.back());
        free_.pop_back();
        return ctx;
      }
    }
    return std::make_unique<SearchContext>(num_nodes_);
  }
  void release(std::unique_ptr<SearchContext> ctx) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(ctx));
  }

 private:
  std::size_t num_nodes_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<SearchContext>> free_;
};

/// Net terminals in RR space.
struct Terminals {
  RRNodeId source = 0;
  std::vector<RRNodeId> sinks;
  /// NetSink indices (into PhysNet::sinks) merged into each kept sink: two
  /// logical connections landing on the same IPIN dedupe into one routed
  /// sink, and timing-driven costing takes the worst criticality of the
  /// merged set.
  std::vector<std::vector<std::size_t>> sink_conns;
  int group = 0;
  int source_group = 0;  ///< keyed by driver: all fanout nets share the OPIN
};

int resolve_threads(const RouteOptions& options) {
  if (options.route_threads > 0) return options.route_threads;
  if (const char* env = std::getenv("FPGADBG_THREADS")) {
    try {
      const std::size_t n = parse_size(env, "FPGADBG_THREADS");
      if (n > 0) return static_cast<int>(n);
    } catch (...) {
      LOG_WARN << "ignoring invalid FPGADBG_THREADS '" << env << "'";
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// The negotiation state shared by every net routing of one route() call.
/// Thread safety: concurrently routed bins have spatially disjoint bounding
/// boxes, expansion never leaves a net's box, and a node is binned by its
/// own coordinates — so concurrent bins read and write disjoint slices of
/// occ / net state.  Everything else is per-SearchContext or read-only
/// during an iteration (history, pres_fac).
struct Router {
  Router(const RRGraph& graph, const RouteOptions& opts, RouteResult* res)
      : rr(graph),
        options(opts),
        width(graph.device().width()),
        height(graph.device().height()),
        result(res) {}

  const RRGraph& rr;
  const RouteOptions& options;
  int width;
  int height;

  std::vector<Terminals> terms;
  std::vector<NodeOcc> occ;
  std::vector<double> history;
  std::vector<std::vector<RRNodeId>> net_nodes;  ///< per-net used nodes
  std::vector<BBox> net_bb;      ///< current expansion box per net
  std::vector<BBox> term_bb;     ///< terminal-only box per net (fixed)
  std::vector<int> net_margin;   ///< current margin around term_bb
  std::vector<char> net_failed;  ///< sink(s) unreached in the last attempt
  std::vector<int> congested_reroutes;  ///< reroutes caused by overuse
  RouteResult* result = nullptr;
  double pres_fac = 0.0;

  // Timing-driven state, refreshed once per iteration at the sequential
  // barrier (read-only while bins route concurrently).
  bool timing_driven = false;
  double crit_weight = 1.0;      ///< TimingOptions::route_crit_weight
  double pin_delay_units = 1.0;  ///< pin_ns / segment_ns (wire segment = 1)
  /// Effective criticality (crit^crit_exp, capped below 1 so congestion
  /// pressure never vanishes) per net per kept sink.
  std::vector<std::vector<double>> conn_crit;
  /// Per-net sink visit order: most critical first, ties by sink index.
  std::vector<std::vector<std::uint32_t>> sink_order;

  std::atomic<std::size_t> heap_pops{0};
  std::atomic<std::size_t> bbox_expansions{0};

  // Group used by net n on node id: OPINs are keyed by driver (all fanout
  // nets of one driver share the physical pin), everything else by the
  // net's exclusivity group.
  int group_at(std::size_t n, RRNodeId id) const {
    return rr.node(id).kind == RRKind::kOpin ? terms[n].source_group
                                             : terms[n].group;
  }

  /// Intrinsic delay of entering a node, in units of one wire segment's
  /// delay (so the congestion base cost of 1.0 and a segment's delay cost of
  /// 1.0 share a scale).
  double delay_units(RRNodeId id) const {
    const RRKind kind = rr.node(id).kind;
    return (kind == RRKind::kChanX || kind == RRKind::kChanY)
               ? 1.0
               : pin_delay_units;
  }

  /// Node cost for a sink of criticality `crit` (0 in wirelength mode): the
  /// VPR blend crit·delay + (1-crit)·congestion.  Critical connections price
  /// wires by delay and shrug at congestion; non-critical ones detour around
  /// it — the negotiation moves shareable slack onto the nets that have it.
  double node_cost(RRNodeId id, int group, double crit) const {
    const auto& node = rr.node(id);
    int occupancy = occ[id].occupancy();
    if (!occ[id].holds(group)) occupancy += 1;  // cost as if we were added
    const int over = std::max(0, occupancy - node.capacity);
    const double congestion =
        (1.0 + history[id]) * (1.0 + pres_fac * over);
    if (crit <= 0.0) return congestion;
    return (1.0 - crit) * congestion + crit * crit_weight * delay_units(id);
  }

  /// Admissible A* lookahead: the minimum number of RR nodes still to be
  /// entered before the target tile, times `scale` — the cheapest possible
  /// per-node cost of the current search (1.0 in wirelength mode, where
  /// every node costs at least 1.0).  A channel wire borders two tiles, so
  /// its distance is the min over both; that keeps the estimate a true lower
  /// bound and consistent (it drops by at most 1 per edge while every
  /// entered node costs at least `scale`).
  double lookahead(RRNodeId id, int tx, int ty, double scale) const {
    if (options.astar_fac <= 0.0) return 0.0;
    const RRNode& nd = rr.node(id);
    int d = std::abs(nd.x - tx) + std::abs(nd.y - ty);
    if (nd.kind == RRKind::kChanX) {
      d = std::min(d, std::abs(nd.x + 1 - tx) + std::abs(nd.y - ty));
    } else if (nd.kind == RRKind::kChanY) {
      d = std::min(d, std::abs(nd.x - tx) + std::abs(nd.y + 1 - ty));
    }
    return options.astar_fac * scale * static_cast<double>(d);
  }

  /// Lower bound on node_cost() over every node kind for a sink of
  /// criticality `crit`: congestion cost is >= 1.0, delay cost is >= the
  /// cheapest delay unit.  Scaling the lookahead by it keeps A* admissible
  /// under the timing blend.
  double min_node_cost(double crit) const {
    if (crit <= 0.0) return 1.0;
    const double min_units = std::min(1.0, pin_delay_units);
    return (1.0 - crit) + crit * crit_weight * min_units;
  }

  void rip_up(std::size_t n) {
    for (RRNodeId id : net_nodes[n]) occ[id].remove(group_at(n, id));
    net_nodes[n].clear();
    result->routes[n].clear();
  }

  /// Widens net n's box by doubling its margin (clamped to the device).
  void grow_bb(std::size_t n) {
    net_margin[n] = std::max(net_margin[n] * 2, 1);
    BBox bb = term_bb[n];
    bb.x0 -= net_margin[n];
    bb.y0 -= net_margin[n];
    bb.x1 += net_margin[n];
    bb.y1 += net_margin[n];
    bb.clamp(width, height);
    net_bb[n] = bb;
    bbox_expansions.fetch_add(1, std::memory_order_relaxed);
  }

  /// Routes every sink of net n inside its current bounding box.  Returns
  /// false as soon as a sink is unreachable within the box (the net is
  /// ripped up and left unrouted for the caller to grow + retry).  When
  /// `last_resort` is set, an unreachable sink no longer aborts: the partial
  /// route is kept and PathFinder keeps negotiating (classic behaviour).
  bool route_net(SearchContext& ctx, std::size_t n, bool last_resort,
                 std::size_t* pops_out) {
    rip_up(n);
    net_failed[n] = 0;
    const BBox& bb = net_bb[n];
    std::size_t pops = 0;

    occ[terms[n].source].add(group_at(n, terms[n].source));
    net_nodes[n].push_back(terms[n].source);
    ++ctx.tree_token;
    ctx.tree_stamp[terms[n].source] = ctx.tree_token;

    // Timing-driven: most critical sink first, so the scarce direct wires go
    // to the connections that need them; the rest share what remains.
    const std::size_t num_sinks = terms[n].sinks.size();
    for (std::size_t si = 0; si < num_sinks; ++si) {
      const std::size_t k =
          timing_driven ? sink_order[n][si] : si;
      const RRNodeId target = terms[n].sinks[k];
      const double crit = timing_driven ? conn_crit[n][k] : 0.0;
      const double la_scale = min_node_cost(crit);
      const RRNode& tnode = rr.node(target);
      const int tx = tnode.x;
      const int ty = tnode.y;
      ++ctx.now;
      std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                          std::greater<QueueEntry>>
          queue;
      // The whole current route tree seeds the search at cost 0.
      for (RRNodeId t : net_nodes[n]) {
        ctx.dist[t] = 0.0;
        ctx.stamp[t] = ctx.now;
        ctx.prev_edge[t] = static_cast<RREdgeId>(-1);
        queue.push(QueueEntry{lookahead(t, tx, ty, la_scale), 0.0, t});
      }
      bool reached = false;
      while (!queue.empty()) {
        const QueueEntry top = queue.top();
        queue.pop();
        ++pops;
        if (ctx.stamp[top.node] == ctx.now && top.g > ctx.dist[top.node]) {
          continue;
        }
        if (top.node == target) {
          reached = true;
          break;
        }
        for (RREdgeId e : rr.out_edges(top.node)) {
          const RRNodeId next = rr.edge(e).to;
          // IPINs are only enterable when they are the target (a pin is
          // not a through-route).
          if (rr.node(next).kind == RRKind::kIpin && next != target) {
            continue;
          }
          const RRNode& nnode = rr.node(next);
          if (!bb.contains(nnode.x, nnode.y)) continue;
          const double g = top.g + node_cost(next, group_at(n, next), crit);
          if (ctx.stamp[next] != ctx.now || g < ctx.dist[next]) {
            ctx.stamp[next] = ctx.now;
            ctx.dist[next] = g;
            ctx.prev_edge[next] = e;
            queue.push(
                QueueEntry{g + lookahead(next, tx, ty, la_scale), g, next});
          }
        }
      }
      if (!reached) {
        net_failed[n] = 1;
        if (!last_resort) {
          // Retry with a wider box (the caller decides where: inline for
          // sequential routing, deferred past the barrier for bin routing).
          rip_up(n);
          *pops_out += pops;
          return false;
        }
        // Device-wide search already: keep the partial route, PathFinder
        // keeps negotiating next iteration.
        continue;
      }
      // Walk back, adding new nodes to the tree.  tree_stamp dedupes: a
      // node already on the tree is neither re-added to net_nodes nor
      // double-counted in occupancy.
      RRNodeId cur = target;
      while (ctx.prev_edge[cur] != static_cast<RREdgeId>(-1)) {
        const RREdgeId e = ctx.prev_edge[cur];
        result->routes[n].push_back(e);
        if (ctx.tree_stamp[cur] != ctx.tree_token) {
          ctx.tree_stamp[cur] = ctx.tree_token;
          occ[cur].add(group_at(n, cur));
          net_nodes[n].push_back(cur);
        }
        cur = rr.edge(e).from;
      }
    }
    *pops_out += pops;
    return true;
  }

  /// Routes one net to completion: attempt inside the current box, grow on
  /// failure, device-wide last resort.  Sequential-context only (box growth
  /// may escape a bin's territory).
  void route_net_growing(SearchContext& ctx, std::size_t n,
                         std::size_t* pops_out) {
    for (;;) {
      const bool last_resort = net_bb[n].covers(width, height);
      if (route_net(ctx, n, last_resort, pops_out)) return;
      grow_bb(n);
    }
  }
};

}  // namespace

RouteResult route(const RRGraph& rr, const MappedNetlist& mn,
                  const Packing& packing, const NetExtraction& nets,
                  const Placement& placement, const RouteOptions& options,
                  const TimingOptions& timing) {
  Stopwatch timer;
  RouteResult result;
  result.routes.resize(nets.nets.size());

  Router router(rr, options, &result);
  router.terms.resize(nets.nets.size());
  for (std::size_t n = 0; n < nets.nets.size(); ++n) {
    const PhysNet& net = nets.nets[n];
    const auto dpos = placement.cell_pos(mn, packing, net.driver);
    Terminals t;
    t.source = rr.opin_at(dpos.first, dpos.second);
    t.group = net.exclusive_group >= 0
                  ? net.exclusive_group
                  : -(static_cast<int>(n) + 2);  // unique synthetic group
    // A physical output pin drives arbitrary fanout: every net of the same
    // driver occupies the OPIN once, together.
    t.source_group = -(static_cast<int>(net.driver) + 2);
    std::unordered_map<RRNodeId, std::size_t> seen;  // ipin -> kept index
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      const NetSink& sink = net.sinks[s];
      std::pair<int, int> pos;
      switch (sink.kind) {
        case SinkKind::kCellPin:
          pos = placement.cell_pos(mn, packing, sink.cell);
          break;
        case SinkKind::kPrimaryOutput:
          pos = placement.io_of_output[sink.index];
          break;
        case SinkKind::kTraceBuffer:
          pos = placement.bram_of_lane[sink.index];
          break;
      }
      if (pos == dpos) continue;  // intra-tile connection: no routing needed
      const RRNodeId ipin = rr.ipin_at(pos.first, pos.second);
      const auto [it, inserted] = seen.emplace(ipin, t.sinks.size());
      if (inserted) {
        t.sinks.push_back(ipin);
        t.sink_conns.push_back({s});
      } else {
        t.sink_conns[it->second].push_back(s);
      }
    }
    router.terms[n] = std::move(t);
  }

  router.occ.resize(rr.num_nodes());
  router.history.assign(rr.num_nodes(), 0.0);
  router.net_nodes.resize(nets.nets.size());
  router.net_failed.assign(nets.nets.size(), 0);
  router.congested_reroutes.assign(nets.nets.size(), 0);
  router.pres_fac = options.pres_fac_init;

  // Initial per-net expansion boxes: the terminal bounding box plus the
  // configured margin; bb_margin < 0 disables pruning (device-wide boxes).
  router.term_bb.resize(nets.nets.size());
  router.net_bb.resize(nets.nets.size());
  router.net_margin.assign(nets.nets.size(), std::max(options.bb_margin, 0));
  for (std::size_t n = 0; n < nets.nets.size(); ++n) {
    BBox tb;
    const RRNode& src = rr.node(router.terms[n].source);
    tb.include(src.x, src.y);
    for (RRNodeId s : router.terms[n].sinks) {
      tb.include(rr.node(s).x, rr.node(s).y);
    }
    router.term_bb[n] = tb;
    if (options.bb_margin < 0) {
      router.net_bb[n] =
          BBox{0, 0, router.width - 1, router.height - 1};
    } else {
      BBox bb = tb;
      bb.x0 -= options.bb_margin;
      bb.y0 -= options.bb_margin;
      bb.x1 += options.bb_margin;
      bb.y1 += options.bb_margin;
      bb.clamp(router.width, router.height);
      router.net_bb[n] = bb;
    }
  }

  // Timing-driven setup: the STA starts at placed fidelity (no routes yet)
  // and its critical-path estimate becomes the clock budget the slack series
  // converges against.  Criticalities are refreshed only at the sequential
  // per-iteration barrier, so the concurrent bins read frozen values and the
  // result stays bit-identical for every thread count.
  std::unique_ptr<TimingAnalyzer> sta;
  auto refresh_criticalities = [&]() {
    for (std::size_t n = 0; n < router.terms.size(); ++n) {
      const Terminals& t = router.terms[n];
      auto& crit = router.conn_crit[n];
      auto& order = router.sink_order[n];
      crit.assign(t.sinks.size(), 0.0);
      order.resize(t.sinks.size());
      for (std::size_t k = 0; k < t.sinks.size(); ++k) {
        double worst = 0.0;
        for (std::size_t conn : t.sink_conns[k]) {
          worst = std::max(worst, sta->connection_criticality(n, conn));
        }
        // Sharpen, then cap below 1: a connection must never go fully blind
        // to congestion or the negotiation cannot evict it from overuse.
        crit[k] = std::min(0.95, std::pow(worst, timing.crit_exp));
        order[k] = static_cast<std::uint32_t>(k);
      }
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (crit[a] != crit[b]) return crit[a] > crit[b];
                  return a < b;
                });
    }
  };
  if (timing.timing_driven) {
    router.timing_driven = true;
    router.crit_weight = timing.route_crit_weight;
    router.pin_delay_units = timing.delays.segment_ns > 0.0
                                 ? timing.delays.pin_ns / timing.delays.segment_ns
                                 : 1.0;
    router.conn_crit.resize(nets.nets.size());
    router.sink_order.resize(nets.nets.size());
    sta = std::make_unique<TimingAnalyzer>(mn, nets, timing.delays);
    sta->use_placed_delays(packing, placement);
    sta->update();
    sta->set_clock_budget_ns(sta->critical_path_ns());
    refresh_criticalities();
  }

  const int threads = resolve_threads(options);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  ContextPool contexts(rr.num_nodes());

  static telemetry::Counter& iter_counter =
      telemetry::metrics().counter("pnr.route.iterations");
  static telemetry::Counter& rerouted_counter =
      telemetry::metrics().counter("pnr.route.rerouted_nets");
  static telemetry::Counter& pops_counter =
      telemetry::metrics().counter("pnr.route.heap_pops");
  static telemetry::Counter& bbox_counter =
      telemetry::metrics().counter("pnr.route.bbox_expansions");
  static telemetry::Gauge& overuse_gauge =
      telemetry::metrics().gauge("pnr.route.overused_nodes");
  static telemetry::Histogram& iter_hist =
      telemetry::metrics().histogram("pnr.route.iteration_seconds");
  // Ordered convergence trajectory (one point per iteration), so the metrics
  // JSON and a live /metrics scrape can show the negotiation closing in on
  // zero overuse rather than only the final state.
  static telemetry::Series& overused_series =
      telemetry::metrics().series("pnr.route.iteration.overused_nodes");
  static telemetry::Series& rerouted_series =
      telemetry::metrics().series("pnr.route.iteration.rerouted_nets");
  static telemetry::Series& pops_series =
      telemetry::metrics().series("pnr.route.iteration.heap_pops");

  telemetry::ProgressReporter progress("pnr.route");
  progress.set_total(static_cast<std::uint64_t>(options.max_iterations));

  // One schedulable batch of nets.  Tasks of the same partition level own
  // spatially disjoint device regions, so they route concurrently; the nets
  // inside one task route sequentially in ascending net order.
  struct Task {
    std::vector<std::size_t> nets;
    std::vector<std::size_t> deferred;  ///< failed inside the box
  };
  constexpr int kMaxDepth = 4;           ///< up to 2^4 leaf regions
  constexpr int kSubDepth = 3;           ///< strip splits of a cut band
  constexpr std::size_t kLeafNets = 16;  ///< stop splitting small batches

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    telemetry::TraceScope iter_span("pnr.route.iteration");
    Stopwatch iter_timer;
    iter_counter.add(1);
    result.iterations = iter;

    // Dirty set: iteration 1 (or non-incremental mode) reroutes everything;
    // afterwards only nets crossing an overused node or with an unreached
    // sink renegotiate.  Ascending net ids keep the order deterministic.
    std::vector<std::size_t> dirty;
    for (std::size_t n = 0; n < nets.nets.size(); ++n) {
      if (router.terms[n].sinks.empty()) continue;
      bool congested = false;
      if (iter > 1 && !router.net_failed[n]) {
        for (RRNodeId id : router.net_nodes[n]) {
          if (router.occ[id].occupancy() > rr.node(id).capacity) {
            congested = true;
            break;
          }
        }
      }
      if (iter == 1 || !options.incremental || router.net_failed[n] ||
          congested) {
        dirty.push_back(n);
      }
      // A net can keep routing "successfully" through overused wires when
      // its expansion box holds no free ones, and a box only grows on
      // outright failure.  Break that trap: a net still congested after
      // several renegotiations gets more room.  Decided here, in the
      // sequential dirty pass, so box growth stays deterministic.
      if (congested && ++router.congested_reroutes[n] % 3 == 0) {
        router.grow_bb(n);
      }
    }
    result.rerouted_nets += dirty.size();
    rerouted_counter.add(dirty.size());

    // Recursive spatial partition (the nextpnr-router2 schedule): cut the
    // region along its wider axis; a net whose expansion box lies entirely
    // on one side recurses into that half.  Cut-crossing nets form a band
    // that is itself split into strips along the perpendicular axis —
    // strips of one band are still pairwise disjoint.  Tasks of one phase
    // own disjoint regions — and a search never leaves its net's box — so
    // they route concurrently; phases execute most-local-first behind a
    // barrier because a band overlaps both halves it bridges.  The
    // schedule is a pure function of the boxes, never of the thread count.
    std::vector<std::vector<Task>> levels(
        static_cast<std::size_t>((kMaxDepth + 1) * (kSubDepth + 1)));
    const auto phase_of = [&](int depth, int sub) {
      return static_cast<std::size_t>(depth * (kSubDepth + 1) + sub);
    };
    // Pick the cut with the fewest crossing boxes (ties: most balanced,
    // then lowest coordinate — all deterministic).  Candidates stay in the
    // middle half of the segment so recursion shrinks geometrically.
    const auto best_cut = [&](const std::vector<std::size_t>& ns, int lo,
                              int hi, bool axis_x) {
      const int span = hi - lo;
      std::vector<int> ends(static_cast<std::size_t>(span) + 1, 0);
      std::vector<int> starts(static_cast<std::size_t>(span) + 1, 0);
      for (const std::size_t n : ns) {
        const BBox& bb = router.net_bb[n];
        ++ends[std::min((axis_x ? bb.x1 : bb.y1), hi) - lo];
        ++starts[std::max((axis_x ? bb.x0 : bb.y0), lo) - lo];
      }
      const int c_lo = lo + span / 4;
      const int c_hi = std::max(c_lo, hi - 1 - span / 4);
      int c_best = c_lo, score_best = -1;
      int boxes_ending = 0, boxes_starting = 0;
      const int total = static_cast<int>(ns.size());
      for (int c = lo; c <= c_hi; ++c) {
        boxes_ending += ends[c - lo];      // boxes entirely at or below c
        boxes_starting += starts[c - lo];  // boxes starting at or below c
        if (c < c_lo) continue;
        const int cross = boxes_starting - boxes_ending;
        const int bal = std::abs(boxes_ending - (total - boxes_starting));
        // The band routes serially and the halves route concurrently, so
        // the schedule length is ~ max(left, right) + cross, which this
        // score tracks up to a constant.
        const int score = 2 * cross + bal;
        if (score_best < 0 || score < score_best) {
          score_best = score;
          c_best = c;
        }
      }
      return c_best;
    };
    {
      struct Frame {
        BBox region;
        std::vector<std::size_t> nets;
        int depth;
      };
      std::vector<Frame> stack;
      stack.push_back(Frame{
          BBox{0, 0, router.width - 1, router.height - 1}, dirty, 0});
      while (!stack.empty()) {
        Frame f = std::move(stack.back());
        stack.pop_back();
        const bool wide =
            f.region.x1 - f.region.x0 >= f.region.y1 - f.region.y0;
        const int span = wide ? f.region.x1 - f.region.x0
                              : f.region.y1 - f.region.y0;
        if (f.depth == kMaxDepth || f.nets.size() <= kLeafNets || span < 4) {
          levels[phase_of(f.depth, 0)].push_back(Task{std::move(f.nets), {}});
          continue;
        }
        const int cut = wide ? best_cut(f.nets, f.region.x0, f.region.x1, true)
                             : best_cut(f.nets, f.region.y0, f.region.y1,
                                        false);
        Frame lo{f.region, {}, f.depth + 1};
        Frame hi{f.region, {}, f.depth + 1};
        if (wide) {
          lo.region.x1 = cut;
          hi.region.x0 = cut + 1;
        } else {
          lo.region.y1 = cut;
          hi.region.y0 = cut + 1;
        }
        std::vector<std::size_t> own;
        for (const std::size_t n : f.nets) {
          const BBox& bb = router.net_bb[n];
          if (wide ? bb.x1 <= cut : bb.y1 <= cut) {
            lo.nets.push_back(n);
          } else if (wide ? bb.x0 > cut : bb.y0 > cut) {
            hi.nets.push_back(n);
          } else {
            own.push_back(n);
          }
        }
        // Strip decomposition of the cut band along the perpendicular axis
        // (1-D recursion; a net that also spans the strip cut stays at its
        // segment's phase).
        struct Seg {
          int lo, hi, sd;
          std::vector<std::size_t> nets;
        };
        std::vector<Seg> segs;
        segs.push_back(Seg{wide ? f.region.y0 : f.region.x0,
                           wide ? f.region.y1 : f.region.x1, 0,
                           std::move(own)});
        while (!segs.empty()) {
          Seg s = std::move(segs.back());
          segs.pop_back();
          if (s.nets.empty()) continue;
          if (s.sd == kSubDepth || s.nets.size() <= kLeafNets ||
              s.hi - s.lo < 4) {
            levels[phase_of(f.depth, s.sd)].push_back(
                Task{std::move(s.nets), {}});
            continue;
          }
          const int scut = best_cut(s.nets, s.lo, s.hi, !wide);
          Seg a{s.lo, scut, s.sd + 1, {}};
          Seg b{scut + 1, s.hi, s.sd + 1, {}};
          std::vector<std::size_t> keep;
          for (const std::size_t n : s.nets) {
            const BBox& bb = router.net_bb[n];
            const int p0 = wide ? bb.y0 : bb.x0;
            const int p1 = wide ? bb.y1 : bb.x1;
            if (p1 <= scut) {
              a.nets.push_back(n);
            } else if (p0 > scut) {
              b.nets.push_back(n);
            } else {
              keep.push_back(n);
            }
          }
          if (!keep.empty()) {
            levels[phase_of(f.depth, s.sd)].push_back(Task{std::move(keep), {}});
          }
          segs.push_back(std::move(a));
          segs.push_back(std::move(b));
        }
        if (!lo.nets.empty()) stack.push_back(std::move(lo));
        if (!hi.nets.empty()) stack.push_back(std::move(hi));
      }
    }

    std::atomic<std::size_t> pops_total{0};
    auto route_task = [&](Task& task) {
      // One span per spatial bin.  Runs on whichever pool worker drains the
      // task; parallel_for's context capture parents it under the
      // pnr.route.iteration span, so the fan-out renders causally linked
      // across thread lanes instead of as disconnected islands.
      telemetry::TraceScope bin_span("pnr.route.bin");
      auto ctx = contexts.acquire();
      std::size_t pops = 0;
      for (const std::size_t n : task.nets) {
        const bool last_resort =
            router.net_bb[n].covers(router.width, router.height);
        if (!router.route_net(*ctx, n, last_resort, &pops)) {
          task.deferred.push_back(n);
        }
      }
      pops_total.fetch_add(pops, std::memory_order_relaxed);
      contexts.release(std::move(ctx));
    };

    std::size_t num_tasks = 0;
    for (std::size_t p = levels.size(); p-- > 0;) {
      std::vector<Task>& level = levels[p];
      num_tasks += level.size();
      if (pool && level.size() > 1) {
        pool->parallel_for(level.size(),
                           [&](std::size_t t) { route_task(level[t]); });
      } else {
        for (Task& task : level) route_task(task);
      }
    }

    // Nets that failed inside their box grow it past task territory, so
    // they reroute sequentially after the barrier, in deterministic net
    // order.
    std::vector<std::size_t> deferred;
    for (const std::vector<Task>& level : levels) {
      for (const Task& task : level) {
        deferred.insert(deferred.end(), task.deferred.begin(),
                        task.deferred.end());
      }
    }
    std::sort(deferred.begin(), deferred.end());
    if (!deferred.empty()) {
      auto ctx = contexts.acquire();
      std::size_t pops = 0;
      for (const std::size_t n : deferred) {
        router.grow_bb(n);
        router.route_net_growing(*ctx, n, &pops);
      }
      pops_total.fetch_add(pops, std::memory_order_relaxed);
      contexts.release(std::move(ctx));
    }
    result.heap_pops += pops_total.load(std::memory_order_relaxed);
    pops_counter.add(pops_total.load(std::memory_order_relaxed));

    // Overuse check + history update.
    bool any_overuse = false;
    std::size_t overused_nodes = 0;
    for (RRNodeId id = 0; id < rr.num_nodes(); ++id) {
      const int over = router.occ[id].occupancy() - rr.node(id).capacity;
      if (over > 0) {
        any_overuse = true;
        ++overused_nodes;
        router.history[id] += options.hist_fac * over;
      }
    }
    for (std::size_t n = 0; n < nets.nets.size(); ++n) {
      if (router.net_failed[n]) any_overuse = true;
    }
    // Congestion trajectory: the negotiation is converging when this gauge
    // falls iteration over iteration.
    overuse_gauge.set(static_cast<double>(overused_nodes));
    iter_hist.observe(iter_timer.elapsed_seconds());
    const std::uint64_t iter_pops =
        pops_total.load(std::memory_order_relaxed);
    overused_series.append(static_cast<double>(overused_nodes));
    rerouted_series.append(static_cast<double>(dirty.size()));
    pops_series.append(static_cast<double>(iter_pops));
    progress.advance(static_cast<std::uint64_t>(iter));
    progress.field("overused_nodes", static_cast<double>(overused_nodes));
    progress.field("rerouted_nets", static_cast<double>(dirty.size()));
    progress.field("heap_pops", static_cast<double>(iter_pops));
    // Timing refresh at the barrier: re-derive routed delays from the routes
    // this iteration produced, record the slack trajectory, and hand the next
    // iteration its updated criticalities.  Worst slack is measured against
    // the placed-fidelity budget captured before iteration 1, so the series
    // shows the router winning back (or conceding) the placer's plan.
    if (sta) {
      sta->use_routed_delays(rr, result.routes);
      sta->update();
      telemetry::metrics()
          .series("pnr.timing.iteration.worst_slack_ns")
          .append(sta->worst_slack_ns());
      telemetry::metrics()
          .series("pnr.timing.iteration.fmax_mhz")
          .append(sta->max_frequency_mhz());
      progress.field("worst_slack_ns", sta->worst_slack_ns());
      refresh_criticalities();
    }
    LOG_DEBUG << "pathfinder iteration " << iter << ": " << dirty.size()
              << " nets rerouted in " << num_tasks << " tasks, "
              << overused_nodes << " overused nodes, pres_fac "
              << router.pres_fac;
    if (!any_overuse) {
      result.success = true;
      break;
    }
    router.pres_fac *= options.pres_fac_mult;
  }
  result.bbox_expansions =
      router.bbox_expansions.load(std::memory_order_relaxed);
  bbox_counter.add(result.bbox_expansions);

  // Final statistics over wires.
  for (RRNodeId id = 0; id < rr.num_nodes(); ++id) {
    const RRKind kind = rr.node(id).kind;
    if (kind != RRKind::kChanX && kind != RRKind::kChanY) continue;
    const int users = router.occ[id].occupancy();
    if (users > 0) {
      ++result.wire_nodes_used;
      result.total_wirelength += static_cast<std::size_t>(users);
    }
  }
  result.runtime_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace fpgadbg::pnr
