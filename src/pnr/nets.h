// Physical net extraction from a mapped netlist.
//
// LUT/TLUT cells and sources are physical blocks; TCON cells are *virtual* —
// they exist only as parameterized switch settings in the routing fabric.
// A TCON is therefore flattened: each of its data drivers gets a wire to the
// TCON chain's eventual consumers, and all drivers funneling into the same
// chain belong to one *exclusive group*: at most one of them is selected by
// any parameter value, so the group's nets may legally share routing
// resources (the heart of the paper's §V-C1 wire savings).
#pragma once

#include <cstdint>
#include <vector>

#include "map/mapped_netlist.h"

namespace fpgadbg::pnr {

/// Sink kinds a net can terminate in.
enum class SinkKind : std::uint8_t { kCellPin, kPrimaryOutput, kTraceBuffer };

struct NetSink {
  SinkKind kind;
  map::CellId cell;        ///< consuming cell (kCellPin) or kNullCell
  std::size_t index = 0;   ///< PO index or trace-lane index
};

struct PhysNet {
  map::CellId driver = map::kNullCell;  ///< a placed cell or source
  std::vector<NetSink> sinks;
  /// Nets with equal non-negative group ids are mutually exclusive
  /// parameter alternatives and may overlap in the routing fabric.
  int exclusive_group = -1;
  /// For a parameterized branch: the TCON this net enters and which of its
  /// data inputs carries the driver.  The net is physically configured only
  /// when the parameters steer that input through the chain — its switch
  /// bits in the PConf are exactly that condition.
  map::CellId via_tcon = map::kNullCell;
  std::size_t via_input = 0;
};

struct NetExtraction {
  std::vector<PhysNet> nets;
  /// Trace-lane index per output position (or npos when the output is a
  /// regular PO).  Lane outputs route to BRAM trace buffers.
  std::vector<std::size_t> trace_lane_of_output;
};

/// Flattens TCON chains into grouped physical nets.  `trace_output_names`
/// (from the instrumentation result) marks which primary outputs are trace
/// lanes headed for BRAM buffers; pass empty for plain circuits.
NetExtraction extract_nets(const map::MappedNetlist& mn,
                           const std::vector<std::string>& trace_output_names);

}  // namespace fpgadbg::pnr
