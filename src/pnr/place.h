// TPlace: analytic seed + simulated-annealing placement (VPR/HeAP lineage).
//
// Clusters are assigned to CLB tiles, primary I/O and parameters to the IO
// ring, trace lanes to BRAM tiles.  An analytic pass (iterate the quadratic
// wirelength system's Jacobi form: every cluster moves to the weighted
// centroid of its nets, anchored by the fixed IO ring, then legalize to
// distinct CLB tiles) replaces the cold random start; the annealer then
// refines from that seed at reduced temperature with the classic swap/move +
// adaptive schedule.  The cost is HPWL over the extracted physical nets,
// or — timing-driven — the per-net blend
// hpwl * ((1-λ) + λ·criticality^crit_exp), with criticality refreshed from
// the STA (pnr/timing.h) at placed fidelity every temperature step.
#pragma once

#include <unordered_map>
#include <vector>

#include "arch/device.h"
#include "pnr/nets.h"
#include "pnr/pack.h"
#include "pnr/timing.h"

namespace fpgadbg::pnr {

struct PlaceOptions {
  std::uint64_t seed = 1;
  /// Moves per temperature step = moves_per_cell * sqrt(#clusters).
  double moves_per_cell = 10.0;
  double initial_accept = 0.8;  ///< target initial acceptance ratio
  double exit_temperature = 0.005;
  /// Seed the annealer with the analytic (centroid-iteration + legalize)
  /// placement instead of a random shuffle.  The anneal then starts at a
  /// quarter of the cold-start temperature: the seed is already good, so the
  /// schedule refines rather than scrambles.
  bool analytic_seed = true;
  /// Centroid iterations of the analytic pass.
  int seed_iterations = 30;
};

struct Placement {
  /// Tile position per cluster.
  std::vector<std::pair<int, int>> cluster_pos;
  /// IO tile per source cell (inputs, params) and per primary output index.
  std::unordered_map<map::CellId, std::pair<int, int>> io_of_cell;
  std::vector<std::pair<int, int>> io_of_output;
  /// BRAM tile per trace lane.
  std::vector<std::pair<int, int>> bram_of_lane;

  /// Position of a net endpoint.
  std::pair<int, int> cell_pos(const map::MappedNetlist& mn,
                               const Packing& packing, map::CellId cell) const;

  double total_hpwl = 0.0;
};

Placement place(const map::MappedNetlist& mn, const Packing& packing,
                const NetExtraction& nets, const arch::Device& device,
                const PlaceOptions& options = {},
                const TimingOptions& timing = {});

}  // namespace fpgadbg::pnr
