// TPlace: simulated-annealing placement (VPR lineage).
//
// Clusters are assigned to CLB tiles, primary I/O and parameters to the IO
// ring, trace lanes to BRAM tiles.  The annealer minimises total half-
// perimeter wirelength (HPWL) over the extracted physical nets with the
// classic swap/move + adaptive temperature schedule.
#pragma once

#include <unordered_map>
#include <vector>

#include "arch/device.h"
#include "pnr/nets.h"
#include "pnr/pack.h"

namespace fpgadbg::pnr {

struct PlaceOptions {
  std::uint64_t seed = 1;
  /// Moves per temperature step = moves_per_cell * sqrt(#clusters).
  double moves_per_cell = 10.0;
  double initial_accept = 0.8;  ///< target initial acceptance ratio
  double exit_temperature = 0.005;
};

struct Placement {
  /// Tile position per cluster.
  std::vector<std::pair<int, int>> cluster_pos;
  /// IO tile per source cell (inputs, params) and per primary output index.
  std::unordered_map<map::CellId, std::pair<int, int>> io_of_cell;
  std::vector<std::pair<int, int>> io_of_output;
  /// BRAM tile per trace lane.
  std::vector<std::pair<int, int>> bram_of_lane;

  /// Position of a net endpoint.
  std::pair<int, int> cell_pos(const map::MappedNetlist& mn,
                               const Packing& packing, map::CellId cell) const;

  double total_hpwl = 0.0;
};

Placement place(const map::MappedNetlist& mn, const Packing& packing,
                const NetExtraction& nets, const arch::Device& device,
                const PlaceOptions& options = {});

}  // namespace fpgadbg::pnr
