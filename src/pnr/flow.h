// TPaR flow driver: pack -> place -> route on an auto-sized device.
//
// This is the offline, computationally intensive stage of the paper's
// Fig. 4(b).  The report carries the §V-C1 metrics (CLBs, wires, runtime)
// compared between the conventional and the parameterized flow.
#pragma once

#include <memory>
#include <string>

#include "arch/frames.h"
#include "pnr/route.h"
#include "support/status.h"

namespace fpgadbg::pnr {

struct CompileOptions {
  arch::ArchParams arch;
  PlaceOptions place;
  RouteOptions route;
  /// Timing-driven knobs + delay model, threaded into place() and route().
  TimingOptions timing;
  /// CLB capacity slack: the device provides clusters * slack CLB tiles.
  double device_slack = 1.4;
};

struct CompileReport {
  std::string device;
  std::size_t clbs_used = 0;
  std::size_t luts = 0;       ///< kLut + kTlut cells
  std::size_t tcons = 0;
  std::size_t nets = 0;
  bool route_success = false;
  int route_iterations = 0;
  std::size_t wire_nodes_used = 0;
  std::size_t total_wirelength = 0;
  // Routed-fidelity STA of the final implementation (always filled; the
  // timing_driven flag records whether the optimizers were steered by it).
  bool timing_driven = false;
  double critical_path_ns = 0.0;
  double max_frequency_mhz = 0.0;
  double worst_slack_ns = 0.0;
  double pack_seconds = 0.0;
  double place_seconds = 0.0;
  double route_seconds = 0.0;
  double total_seconds = 0.0;
};

/// A fully compiled design.  Owns the device model so internal references
/// stay valid; move-only.
struct CompiledDesign {
  std::unique_ptr<arch::Device> device;
  std::unique_ptr<arch::RRGraph> rr;
  std::unique_ptr<arch::FrameGeometry> frames;
  map::MappedNetlist netlist;
  Packing packing;
  NetExtraction nets;
  Placement placement;
  RouteResult routing;
  CompileReport report;
};

CompiledDesign compile(map::MappedNetlist mn,
                       const std::vector<std::string>& trace_output_names,
                       const CompileOptions& options = {});

/// Runs the routed-fidelity STA over a compiled design, fills the report's
/// timing fields and publishes the `timing.fmax_mhz` gauge (exposed as
/// `fpgadbg_timing_fmax_mhz` on /metrics).  compile() calls it; the cached
/// pipeline calls it too so replayed place/route artifacts still report
/// timing.
void finalize_timing(CompiledDesign& design, const TimingOptions& timing);

/// Result form of compile: an unroutable or otherwise failing physical flow
/// comes back as a Status (kUnroutable for FlowError) instead of throwing.
support::Result<CompiledDesign> try_compile(
    map::MappedNetlist mn, const std::vector<std::string>& trace_output_names,
    const CompileOptions& options = {});

}  // namespace fpgadbg::pnr
