// TPaR flow driver: pack -> place -> route on an auto-sized device.
//
// This is the offline, computationally intensive stage of the paper's
// Fig. 4(b).  The report carries the §V-C1 metrics (CLBs, wires, runtime)
// compared between the conventional and the parameterized flow.
#pragma once

#include <memory>
#include <string>

#include "arch/frames.h"
#include "pnr/route.h"
#include "support/status.h"

namespace fpgadbg::pnr {

struct CompileOptions {
  arch::ArchParams arch;
  PlaceOptions place;
  RouteOptions route;
  /// CLB capacity slack: the device provides clusters * slack CLB tiles.
  double device_slack = 1.4;
};

struct CompileReport {
  std::string device;
  std::size_t clbs_used = 0;
  std::size_t luts = 0;       ///< kLut + kTlut cells
  std::size_t tcons = 0;
  std::size_t nets = 0;
  bool route_success = false;
  int route_iterations = 0;
  std::size_t wire_nodes_used = 0;
  std::size_t total_wirelength = 0;
  double pack_seconds = 0.0;
  double place_seconds = 0.0;
  double route_seconds = 0.0;
  double total_seconds = 0.0;
};

/// A fully compiled design.  Owns the device model so internal references
/// stay valid; move-only.
struct CompiledDesign {
  std::unique_ptr<arch::Device> device;
  std::unique_ptr<arch::RRGraph> rr;
  std::unique_ptr<arch::FrameGeometry> frames;
  map::MappedNetlist netlist;
  Packing packing;
  NetExtraction nets;
  Placement placement;
  RouteResult routing;
  CompileReport report;
};

CompiledDesign compile(map::MappedNetlist mn,
                       const std::vector<std::string>& trace_output_names,
                       const CompileOptions& options = {});

/// Result form of compile: an unroutable or otherwise failing physical flow
/// comes back as a Status (kUnroutable for FlowError) instead of throwing.
support::Result<CompiledDesign> try_compile(
    map::MappedNetlist mn, const std::vector<std::string>& trace_output_names,
    const CompileOptions& options = {});

}  // namespace fpgadbg::pnr
