// Static timing analysis over the mapped design, at any flow fidelity.
//
// The paper's §V-B argument — parameterized reconfiguration leaves the
// critical path alone because TCONs live entirely in the routing fabric — is
// checked here, but the analyzer is no longer a post-route report: it is the
// timing layer the whole flow optimizes against (nextpnr common/timing.cc
// lineage).  One TimingAnalyzer instance is built per mapped design and
// refreshed in place as the physical picture sharpens:
//
//   kPreplace — net delays from fanout estimates (nothing placed yet);
//               seeds criticality weights for the analytic placement pass.
//   kPlaced   — net delays from Manhattan distance between placed endpoints;
//               drives the annealer's blended HPWL/timing cost.
//   kRouted   — net delays from the actual routed segment counts; drives the
//               router's per-iteration renegotiation and the final report.
//
// The timing graph is built over the *flattened physical connections*
// (pnr::NetExtraction), not the raw mapped-cell edges: a TCON chain is a
// parameterized wire, so a connection driver -> consumer-through-TCONs is one
// timing edge carrying one net's wire delay.  That makes per-connection
// slack exactly the quantity the placer and router price, and it encodes the
// §V-B claim structurally: TCONs add zero cell delay and no extra edges.
//
// update() re-propagates arrival and required times over cached CSR arrays
// with no allocation — cheap enough to run once per annealing temperature
// step and once per PathFinder iteration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/rr_graph.h"
#include "map/mapped_netlist.h"

namespace fpgadbg::pnr {

// This header sits below the rest of pnr (place.h and route.h include it for
// TimingOptions), so the physical-design types are forward-declared and only
// touched by reference here.
struct NetExtraction;
struct Packing;
struct Placement;
struct CompiledDesign;  // pnr/flow.h; analyze_timing() is defined over it

/// Delay constants of the architecture model.  All knobs are exposed on the
/// CLI (--delay-*) and folded into the pipeline options hash: editing one
/// invalidates exactly the placed/routed cached stages.
struct DelayModel {
  double lut_ns = 0.9;       ///< K-LUT cell delay
  double pin_ns = 0.05;      ///< OPIN/IPIN transfer
  double segment_ns = 0.18;  ///< one unit-length routed wire segment
  /// kPreplace fidelity: estimated wire delay per sink of a net's fanout.
  double fanout_ns = 0.10;
  /// kPlaced fidelity: estimated wire delay per tile of Manhattan distance
  /// between placed endpoints (a routed unit segment spans one tile, but the
  /// router usually finds near-direct paths, so this sits below segment_ns).
  double tile_ns = 0.12;
};

/// Knobs for the timing-driven flow, threaded through CompileOptions into
/// both optimizers.  timing_driven=false keeps the classic wirelength-driven
/// behaviour bit-for-bit (the analyzer never runs inside place/route).
struct TimingOptions {
  bool timing_driven = false;
  /// λ of the placer's blended cost
  /// (1-λ)·HPWL + λ·Σ criticality^crit_exp · delay_estimate.
  double place_tradeoff = 0.5;
  /// Criticality sharpening exponent (VPR lineage): cost terms use
  /// criticality^crit_exp, so larger values focus effort on the worst paths.
  double crit_exp = 2.0;
  /// Weight of the delay term in the router's per-connection blended node
  /// cost; the congestion term is weighted by (1 - criticality).
  double route_crit_weight = 1.0;
  DelayModel delays;
};

/// How the analyzer's current net delays were derived.
enum class TimingFidelity : std::uint8_t { kPreplace, kPlaced, kRouted };

struct TimingReport {
  double critical_path_ns = 0.0;
  double max_frequency_mhz = 0.0;
  /// Worst endpoint slack against the critical path as the implied clock
  /// constraint: 0 for the critical endpoint itself, > 0 elsewhere.
  double worst_slack_ns = 0.0;
  TimingFidelity fidelity = TimingFidelity::kPreplace;
  /// Cell names along the critical path, source to endpoint (placeable cells
  /// only: TCONs are wires and do not appear).
  std::vector<std::string> critical_path;
  /// Arrival time per cell (ns), indexed by CellId.
  std::vector<double> arrival_ns;
  /// Required time per cell output (ns), indexed by CellId.  Cells with no
  /// path to an endpoint hold a large sentinel (their slack is unbounded).
  std::vector<double> required_ns;
};

/// The STA engine.  Construction builds the timing graph (one edge per
/// physical connection; connections into primary outputs, trace lanes and
/// latch D pins are timing endpoints); the use_*_delays() setters re-derive
/// edge delays at a fidelity; update() re-propagates arrival/required/
/// criticality.
/// All state lives in flat arrays sized once — refresh allocates nothing.
class TimingAnalyzer {
 public:
  TimingAnalyzer(const map::MappedNetlist& mn, const NetExtraction& nets,
                 const DelayModel& model = {});

  // --- delay fidelities ----------------------------------------------------
  void use_preplace_delays();
  void use_placed_delays(const Packing& packing, const Placement& placement);
  void use_routed_delays(const arch::RRGraph& rr,
                         const std::vector<std::vector<arch::RREdgeId>>& routes);

  /// Re-propagates arrival and required times and refreshes per-edge
  /// criticality.  O(cells + connections), allocation-free.
  void update();

  /// Optional clock budget (ns).  Slack is reported against it; 0 (default)
  /// means unconstrained, where the implied clock is the critical path
  /// itself and the worst slack is 0 by construction.  The router sets the
  /// placed-fidelity estimate as the budget so its per-iteration worst-slack
  /// series shows convergence against the plan the placer left behind.
  /// Criticality always normalizes against the implied clock, keeping it in
  /// [0, 1] regardless of the budget.
  void set_clock_budget_ns(double ns) { clock_budget_ns_ = ns; }
  double clock_budget_ns() const { return clock_budget_ns_; }

  // --- analysis results (valid after update()) -----------------------------
  TimingFidelity fidelity() const { return fidelity_; }
  double critical_path_ns() const { return critical_path_ns_; }
  double max_frequency_mhz() const {
    return critical_path_ns_ > 0.0 ? 1e3 / critical_path_ns_ : 0.0;
  }
  double worst_slack_ns() const { return worst_slack_ns_; }
  const std::vector<double>& arrival_ns() const { return arrival_; }
  const std::vector<double>& required_ns() const { return required_; }

  /// Normalized criticality of connection `sink_idx` of physical net `net`
  /// (same indexing as NetExtraction::nets[net].sinks).  Always in [0, 1]:
  /// 1 on the critical path, 0 for connections with >= critical-path slack.
  double connection_criticality(std::size_t net, std::size_t sink_idx) const;
  /// Worst (max) criticality over a physical net's connections.
  double net_criticality(std::size_t net) const;
  /// Slack of one connection (ns); large positive for unconstrained cones.
  double connection_slack_ns(std::size_t net, std::size_t sink_idx) const;

  /// Full report (copies the per-cell arrays and unwinds the worst path).
  TimingReport report() const;

 private:
  struct Edge {
    map::CellId from;
    /// Consuming cell, or map::kNullCell for a timing endpoint: a primary
    /// output, a trace-buffer lane, or a latch D pin (extract_nets models
    /// the D connection as a pin sink on the latch-output source cell;
    /// treating it as a through edge would close a loop around every
    /// register, so it captures here instead).
    map::CellId to;
    std::size_t net;   ///< physical net carrying the connection
    std::size_t sink;  ///< sink index within the net
  };

  double cell_delay(map::CellId id) const;
  void propagate();

  const map::MappedNetlist& mn_;
  const NetExtraction& nets_;
  DelayModel model_;
  TimingFidelity fidelity_ = TimingFidelity::kPreplace;

  std::vector<Edge> edges_;
  std::vector<double> edge_delay_;
  std::vector<double> edge_crit_;
  std::vector<double> edge_slack_;
  /// First edge index per physical net; a net's connections are contiguous
  /// and in sink order, so edge(net, sink) = net_first_[net] + sink.
  std::vector<std::size_t> net_first_;
  /// In/out edges per cell in CSR form, for the arrival/required sweeps.
  std::vector<std::uint32_t> in_offset_;
  std::vector<std::uint32_t> in_edges_;
  std::vector<std::uint32_t> out_offset_;
  std::vector<std::uint32_t> out_edges_;
  /// Sources first, then placeable cells in topological order (TCONs
  /// excluded: they are wires).  Forward sweeps walk it, reverse sweeps walk
  /// it backwards.
  std::vector<map::CellId> order_;

  std::vector<double> arrival_;
  std::vector<double> required_;
  std::vector<std::uint32_t> pred_edge_;  ///< worst in-edge per cell
  double critical_path_ns_ = 0.0;
  double worst_slack_ns_ = 0.0;
  double clock_budget_ns_ = 0.0;
  std::size_t worst_edge_ = 0;  ///< endpoint edge closing the critical path
};

/// Routed-fidelity convenience wrapper over the compiled design: builds an
/// analyzer, loads the routed segment delays and returns the report.  This is
/// the ONE timing truth — bench_critical_path, the §V-B tests and the flow
/// report all go through it.
TimingReport analyze_timing(const CompiledDesign& design,
                            const DelayModel& model = {});

}  // namespace fpgadbg::pnr
