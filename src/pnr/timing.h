// Routed timing analysis (paper §V-B: critical path delay).
//
// Table II's logic depth is the architecture-independent proxy; this
// analysis weights the real placed-and-routed design: every LUT/TLUT costs a
// cell delay, every net costs pin delay plus wire delay proportional to its
// routed segment count.  TCONs contribute only their routing (that is the
// §V-B argument for why the proposed flow leaves the critical path alone).
#pragma once

#include <string>
#include <vector>

#include "pnr/flow.h"

namespace fpgadbg::pnr {

struct DelayModel {
  double lut_ns = 0.9;       ///< K-LUT cell delay
  double pin_ns = 0.05;      ///< OPIN/IPIN transfer
  double segment_ns = 0.18;  ///< one unit-length routed wire segment
};

struct TimingReport {
  double critical_path_ns = 0.0;
  double max_frequency_mhz = 0.0;
  /// Cell names along the critical path, source to endpoint.
  std::vector<std::string> critical_path;
  /// Arrival time per cell (ns), indexed by CellId.
  std::vector<double> arrival_ns;
};

TimingReport analyze_timing(const CompiledDesign& design,
                            const DelayModel& model = {});

}  // namespace fpgadbg::pnr
