#include "pnr/timing.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "pnr/flow.h"
#include "pnr/nets.h"
#include "pnr/pack.h"
#include "pnr/place.h"
#include "support/error.h"

namespace fpgadbg::pnr {

using map::CellId;
using map::kNullCell;
using map::MappedNetlist;
using map::MKind;

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
constexpr std::uint32_t kNoPred = 0xffffffffu;
/// Required-time sentinel for cells with no path to any endpoint: their
/// slack is unbounded, so any finite arrival leaves them fully non-critical.
constexpr double kUnconstrained = 1e30;

int manhattan(std::pair<int, int> a, std::pair<int, int> b) {
  return std::abs(a.first - b.first) + std::abs(a.second - b.second);
}

}  // namespace

TimingAnalyzer::TimingAnalyzer(const MappedNetlist& mn,
                               const NetExtraction& nets,
                               const DelayModel& model)
    : mn_(mn), nets_(nets), model_(model) {
  // One timing edge per physical connection, contiguous per net and in sink
  // order so edge(net, sink) = net_first_[net] + sink.
  net_first_.reserve(nets.nets.size() + 1);
  for (const PhysNet& net : nets.nets) {
    net_first_.push_back(edges_.size());
    const std::size_t n = net_first_.size() - 1;
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      const NetSink& sink = net.sinks[s];
      Edge e;
      e.from = net.driver;
      // A cell-pin sink on a SOURCE cell is a latch D pin (extract_nets
      // models the D connection as a pin of the latch-output cell): that is
      // a register capture — a timing endpoint, NOT a through edge.  Wiring
      // it through would close a combinational loop around every register.
      e.to = sink.kind == SinkKind::kCellPin && !mn.is_source(sink.cell)
                 ? sink.cell
                 : kNullCell;
      e.net = n;
      e.sink = s;
      edges_.push_back(e);
    }
  }
  net_first_.push_back(edges_.size());
  edge_delay_.assign(edges_.size(), 0.0);
  edge_crit_.assign(edges_.size(), 0.0);
  edge_slack_.assign(edges_.size(), 0.0);

  // CSR adjacency over cells (endpoint edges have no `to` row).
  const std::size_t cells = mn.num_cells();
  in_offset_.assign(cells + 1, 0);
  out_offset_.assign(cells + 1, 0);
  for (const Edge& e : edges_) {
    ++out_offset_[e.from + 1];
    if (e.to != kNullCell) ++in_offset_[e.to + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) {
    in_offset_[c + 1] += in_offset_[c];
    out_offset_[c + 1] += out_offset_[c];
  }
  in_edges_.resize(in_offset_[cells]);
  out_edges_.resize(out_offset_[cells]);
  std::vector<std::uint32_t> in_fill(in_offset_.begin(),
                                     in_offset_.end() - 1);
  std::vector<std::uint32_t> out_fill(out_offset_.begin(),
                                      out_offset_.end() - 1);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    out_edges_[out_fill[e.from]++] = static_cast<std::uint32_t>(i);
    if (e.to != kNullCell) {
      in_edges_[in_fill[e.to]++] = static_cast<std::uint32_t>(i);
    }
  }

  // Sweep order: sources first (arrival 0 launch points), then logic cells
  // in topological order.  A flattened connection's driver topologically
  // precedes the TCONs it was flattened through, which precede the consumer,
  // so the filtered order stays valid for the connection graph.
  order_.reserve(cells);
  for (CellId id = 0; id < cells; ++id) {
    if (mn.is_source(id)) order_.push_back(id);
  }
  for (CellId id : mn.topo_order()) {
    if (mn.cell(id).kind != MKind::kTcon) order_.push_back(id);
  }

  arrival_.assign(cells, 0.0);
  required_.assign(cells, kUnconstrained);
  pred_edge_.assign(cells, kNoPred);

  use_preplace_delays();
}

double TimingAnalyzer::cell_delay(CellId id) const {
  const MKind k = mn_.cell(id).kind;
  return (k == MKind::kLut || k == MKind::kTlut) ? model_.lut_ns : 0.0;
}

void TimingAnalyzer::use_preplace_delays() {
  fidelity_ = TimingFidelity::kPreplace;
  for (std::size_t n = 0; n + 1 < net_first_.size(); ++n) {
    const double fanout =
        static_cast<double>(net_first_[n + 1] - net_first_[n]);
    const double wire = 2.0 * model_.pin_ns + model_.fanout_ns * fanout;
    for (std::size_t i = net_first_[n]; i < net_first_[n + 1]; ++i) {
      edge_delay_[i] = wire;
    }
  }
  // Latch capture edges (after the last net) stay at 0: intra-BLE.
}

void TimingAnalyzer::use_placed_delays(const Packing& packing,
                                       const Placement& placement) {
  fidelity_ = TimingFidelity::kPlaced;
  for (std::size_t n = 0; n + 1 < net_first_.size(); ++n) {
    const PhysNet& net = nets_.nets[n];
    const auto dpos = placement.cell_pos(mn_, packing, net.driver);
    for (std::size_t i = net_first_[n]; i < net_first_[n + 1]; ++i) {
      const NetSink& sink = net.sinks[edges_[i].sink];
      std::pair<int, int> spos;
      switch (sink.kind) {
        case SinkKind::kCellPin:
          spos = placement.cell_pos(mn_, packing, sink.cell);
          break;
        case SinkKind::kPrimaryOutput:
          spos = placement.io_of_output[sink.index];
          break;
        case SinkKind::kTraceBuffer:
          spos = placement.bram_of_lane[sink.index];
          break;
      }
      edge_delay_[i] = 2.0 * model_.pin_ns +
                       model_.tile_ns * static_cast<double>(
                                            manhattan(dpos, spos));
    }
  }
}

void TimingAnalyzer::use_routed_delays(
    const arch::RRGraph& rr,
    const std::vector<std::vector<arch::RREdgeId>>& routes) {
  fidelity_ = TimingFidelity::kRouted;
  // Scratch reused across nets; the tree walk below is O(route edges).
  std::unordered_map<arch::RRNodeId, std::vector<arch::RRNodeId>> children;
  std::unordered_set<arch::RRNodeId> has_parent;
  std::vector<std::pair<arch::RRNodeId, double>> stack;
  const auto is_chan = [&](arch::RRNodeId id) {
    const arch::RRKind kind = rr.node(id).kind;
    return kind == arch::RRKind::kChanX || kind == arch::RRKind::kChanY;
  };
  for (std::size_t n = 0; n + 1 < net_first_.size(); ++n) {
    // Wire length of the net at routed fidelity: the deepest root-to-leaf
    // segment count of the route tree.  Per-net rather than per-sink —
    // exact for the single-sink nets TCON flattening produces in droves and
    // for the farthest sink of a fanout net, mildly pessimistic for its
    // nearer sinks (shared-trunk branches are NOT summed, only the longest
    // path counts).
    double segments = 0.0;
    if (n < routes.size() && !routes[n].empty()) {
      children.clear();
      has_parent.clear();
      for (arch::RREdgeId e : routes[n]) {
        const auto& edge = rr.edge(e);
        children[edge.from].push_back(edge.to);
        has_parent.insert(edge.to);
      }
      stack.clear();
      for (const auto& [node, kids] : children) {
        if (!has_parent.count(node)) stack.push_back({node, 0.0});
      }
      while (!stack.empty()) {
        const auto [node, depth] = stack.back();
        stack.pop_back();
        const auto it = children.find(node);
        if (it == children.end()) continue;
        for (arch::RRNodeId kid : it->second) {
          const double d = depth + (is_chan(kid) ? 1.0 : 0.0);
          segments = std::max(segments, d);
          stack.push_back({kid, d});
        }
      }
    }
    const double wire = 2.0 * model_.pin_ns + segments * model_.segment_ns;
    for (std::size_t i = net_first_[n]; i < net_first_[n + 1]; ++i) {
      edge_delay_[i] = wire;
    }
  }
}

void TimingAnalyzer::update() { propagate(); }

void TimingAnalyzer::propagate() {
  // Forward sweep: arrival at a cell's output.
  for (CellId c : order_) {
    double worst_in = 0.0;
    std::uint32_t worst_edge = kNoPred;
    for (std::uint32_t i = in_offset_[c]; i < in_offset_[c + 1]; ++i) {
      const std::uint32_t e = in_edges_[i];
      const double t = arrival_[edges_[e].from] + edge_delay_[e];
      if (worst_edge == kNoPred || t > worst_in) {
        worst_in = t;
        worst_edge = e;
      }
    }
    arrival_[c] = worst_in + cell_delay(c);
    pred_edge_[c] = worst_edge;
  }

  // Implied clock: the worst endpoint arrival.
  critical_path_ns_ = 0.0;
  worst_edge_ = kNpos;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].to != kNullCell) continue;
    const double t = arrival_[edges_[i].from] + edge_delay_[i];
    if (worst_edge_ == kNpos || t > critical_path_ns_) {
      critical_path_ns_ = t;
      worst_edge_ = i;
    }
  }
  const double tmax = critical_path_ns_;
  const double constraint = clock_budget_ns_ > 0.0 ? clock_budget_ns_ : tmax;
  worst_slack_ns_ = constraint - tmax;

  // Reverse sweep: required time at a cell's output is the tightest demand
  // of its consumers; endpoint edges demand the implied clock.
  for (std::size_t i = order_.size(); i-- > 0;) {
    const CellId c = order_[i];
    double req = kUnconstrained;
    for (std::uint32_t j = out_offset_[c]; j < out_offset_[c + 1]; ++j) {
      const std::uint32_t e = out_edges_[j];
      const Edge& edge = edges_[e];
      const double at_input = edge.to == kNullCell
                                  ? tmax
                                  : required_[edge.to] - cell_delay(edge.to);
      req = std::min(req, at_input - edge_delay_[e]);
    }
    required_[c] = req;
  }

  // Per-connection slack and normalized criticality (VPR convention:
  // crit = 1 - slack / Tmax, clamped into [0, 1]).
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    const double at_input =
        e.to == kNullCell ? tmax : required_[e.to] - cell_delay(e.to);
    const double slack = at_input - (arrival_[e.from] + edge_delay_[i]);
    edge_slack_[i] = slack;
    double crit = tmax > 0.0 ? 1.0 - slack / tmax : 0.0;
    edge_crit_[i] = std::clamp(crit, 0.0, 1.0);
  }
}

double TimingAnalyzer::connection_criticality(std::size_t net,
                                              std::size_t sink_idx) const {
  const std::size_t i = net_first_[net] + sink_idx;
  FPGADBG_ASSERT(i < net_first_[net + 1], "connection index out of range");
  return edge_crit_[i];
}

double TimingAnalyzer::net_criticality(std::size_t net) const {
  double crit = 0.0;
  for (std::size_t i = net_first_[net]; i < net_first_[net + 1]; ++i) {
    crit = std::max(crit, edge_crit_[i]);
  }
  return crit;
}

double TimingAnalyzer::connection_slack_ns(std::size_t net,
                                           std::size_t sink_idx) const {
  const std::size_t i = net_first_[net] + sink_idx;
  FPGADBG_ASSERT(i < net_first_[net + 1], "connection index out of range");
  return edge_slack_[i];
}

TimingReport TimingAnalyzer::report() const {
  TimingReport rep;
  rep.critical_path_ns = critical_path_ns_;
  rep.max_frequency_mhz = max_frequency_mhz();
  rep.worst_slack_ns = worst_slack_ns_;
  rep.fidelity = fidelity_;
  rep.arrival_ns = arrival_;
  rep.required_ns = required_;
  if (worst_edge_ != kNpos) {
    std::uint32_t e = static_cast<std::uint32_t>(worst_edge_);
    for (;;) {
      const CellId c = edges_[e].from;
      rep.critical_path.push_back(mn_.cell(c).name);
      if (pred_edge_[c] == kNoPred) break;
      e = pred_edge_[c];
    }
    std::reverse(rep.critical_path.begin(), rep.critical_path.end());
  }
  return rep;
}

TimingReport analyze_timing(const CompiledDesign& design,
                            const DelayModel& model) {
  TimingAnalyzer sta(design.netlist, design.nets, model);
  sta.use_routed_delays(*design.rr, design.routing.routes);
  sta.update();
  return sta.report();
}

}  // namespace fpgadbg::pnr
