#include "pnr/timing.h"

#include <algorithm>

#include "support/error.h"

namespace fpgadbg::pnr {

using map::CellId;
using map::kNullCell;
using map::MappedNetlist;
using map::MKind;

TimingReport analyze_timing(const CompiledDesign& design,
                            const DelayModel& model) {
  const MappedNetlist& mn = design.netlist;
  TimingReport report;
  report.arrival_ns.assign(mn.num_cells(), 0.0);
  std::vector<CellId> pred(mn.num_cells(), kNullCell);

  // Per-driver routed wire delay: the net's segment count scaled by the
  // model.  Nets were split per TCON branch; charge each driver the worst
  // of its nets (pessimistic but consistent across flows).
  std::vector<double> net_delay(mn.num_cells(), model.pin_ns);
  std::vector<std::size_t> worst_segments(mn.num_cells(), 0);
  for (std::size_t n = 0; n < design.nets.nets.size(); ++n) {
    const CellId driver = design.nets.nets[n].driver;
    std::size_t segments = 0;
    for (arch::RREdgeId e : design.routing.routes[n]) {
      const auto kind = design.rr->node(design.rr->edge(e).to).kind;
      if (kind == arch::RRKind::kChanX || kind == arch::RRKind::kChanY) {
        ++segments;
      }
    }
    worst_segments[driver] = std::max(worst_segments[driver], segments);
  }
  for (CellId id = 0; id < mn.num_cells(); ++id) {
    net_delay[id] = 2 * model.pin_ns +
                    static_cast<double>(worst_segments[id]) * model.segment_ns;
  }

  // Arrival propagation in topological order; TCONs add routing delay only
  // (their wires were already charged to their drivers' nets).
  for (CellId id : mn.topo_order()) {
    const auto& cell = mn.cell(id);
    double worst_in = 0.0;
    CellId worst_pred = kNullCell;
    for (CellId in : cell.data_inputs) {
      const double t = report.arrival_ns[in] + net_delay[in];
      if (t > worst_in) {
        worst_in = t;
        worst_pred = in;
      }
    }
    const double cell_delay = cell.kind == MKind::kTcon ? 0.0 : model.lut_ns;
    report.arrival_ns[id] = worst_in + cell_delay;
    pred[id] = worst_pred;
  }

  // Endpoints: primary outputs and latch D pins.
  CellId worst_end = kNullCell;
  auto consider = [&](CellId id) {
    const double t = report.arrival_ns[id] + net_delay[id];
    if (worst_end == kNullCell ||
        t > report.arrival_ns[worst_end] + net_delay[worst_end]) {
      worst_end = id;
    }
  };
  for (CellId out : mn.outputs()) consider(out);
  for (const auto& latch : mn.latches()) consider(latch.input);
  if (worst_end == kNullCell) return report;

  report.critical_path_ns =
      report.arrival_ns[worst_end] + net_delay[worst_end];
  report.max_frequency_mhz =
      report.critical_path_ns > 0 ? 1e3 / report.critical_path_ns : 0.0;

  // Unwind the worst path.
  for (CellId cur = worst_end; cur != kNullCell; cur = pred[cur]) {
    report.critical_path.push_back(mn.cell(cur).name);
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  return report;
}

}  // namespace fpgadbg::pnr
