#include "pnr/nets.h"

#include <algorithm>

#include "support/error.h"

namespace fpgadbg::pnr {

using map::CellId;
using map::kNullCell;
using map::MappedNetlist;
using map::MKind;

namespace {

struct Flattened {
  std::vector<NetSink> sinks;
  int group = -1;  ///< max TCON id on any path (chain representative)
};

}  // namespace

NetExtraction extract_nets(const MappedNetlist& mn,
                           const std::vector<std::string>& trace_output_names) {
  NetExtraction result;

  // Classify outputs: trace lanes vs regular POs.
  const std::size_t npos = static_cast<std::size_t>(-1);
  result.trace_lane_of_output.assign(mn.outputs().size(), npos);
  for (std::size_t i = 0; i < mn.outputs().size(); ++i) {
    const auto it = std::find(trace_output_names.begin(),
                              trace_output_names.end(), mn.output_names()[i]);
    if (it != trace_output_names.end()) {
      result.trace_lane_of_output[i] =
          static_cast<std::size_t>(it - trace_output_names.begin());
    }
  }

  // Reader lists: cell -> consuming cells; plus output/latch-D consumers.
  std::vector<std::vector<CellId>> readers(mn.num_cells());
  for (CellId id = 0; id < mn.num_cells(); ++id) {
    const auto& cell = mn.cell(id);
    for (CellId in : cell.data_inputs) readers[in].push_back(id);
    // Param inputs do not create signal nets: they are configuration.
  }
  std::vector<std::vector<std::size_t>> po_of(mn.num_cells());
  for (std::size_t i = 0; i < mn.outputs().size(); ++i) {
    po_of[mn.outputs()[i]].push_back(i);
  }
  std::vector<std::vector<std::size_t>> latch_d_of(mn.num_cells());
  for (std::size_t i = 0; i < mn.latches().size(); ++i) {
    latch_d_of[mn.latches()[i].input].push_back(i);
  }

  // Flatten the consumers of a signal produced by `id`, looking through
  // TCON readers.  Memoized per cell.
  std::vector<char> computed(mn.num_cells(), 0);
  std::vector<Flattened> flat(mn.num_cells());
  auto flatten = [&](auto&& self, CellId id) -> const Flattened& {
    if (computed[id]) return flat[id];
    computed[id] = 1;  // set first: TCON graphs are acyclic, guard anyway
    Flattened& f = flat[id];
    for (CellId r : readers[id]) {
      if (mn.cell(r).kind == MKind::kTcon) {
        const Flattened& sub = self(self, r);
        f.sinks.insert(f.sinks.end(), sub.sinks.begin(), sub.sinks.end());
        f.group = std::max(f.group,
                           std::max(sub.group, static_cast<int>(r)));
      } else {
        f.sinks.push_back(NetSink{SinkKind::kCellPin, r, 0});
      }
    }
    for (std::size_t po : po_of[id]) {
      const std::size_t lane = result.trace_lane_of_output[po];
      if (lane == static_cast<std::size_t>(-1)) {
        f.sinks.push_back(NetSink{SinkKind::kPrimaryOutput, kNullCell, po});
      } else {
        f.sinks.push_back(NetSink{SinkKind::kTraceBuffer, kNullCell, lane});
      }
    }
    for (std::size_t l : latch_d_of[id]) {
      // The latch D pin lives in the BLE of its driver when possible; model
      // it as a pin of the latch-output cell's cluster.
      f.sinks.push_back(
          NetSink{SinkKind::kCellPin, mn.latches()[l].output, 0});
    }
    // Deduplicate sinks.
    std::sort(f.sinks.begin(), f.sinks.end(),
              [](const NetSink& a, const NetSink& b) {
                return std::tie(a.kind, a.cell, a.index) <
                       std::tie(b.kind, b.cell, b.index);
              });
    f.sinks.erase(std::unique(f.sinks.begin(), f.sinks.end(),
                              [](const NetSink& a, const NetSink& b) {
                                return a.kind == b.kind && a.cell == b.cell &&
                                       a.index == b.index;
                              }),
                  f.sinks.end());
    return f;
  };

  // Per non-TCON signal producer: one always-on net for its direct sinks,
  // plus one conditional (grouped) net per TCON it enters.  Splitting is
  // essential for the bitstream: only the TCON-branch switches are
  // parameter-dependent; wires to regular consumers are always configured.
  for (CellId id = 0; id < mn.num_cells(); ++id) {
    const MKind kind = mn.cell(id).kind;
    if (kind == MKind::kTcon) continue;  // virtual: no own net

    PhysNet direct;
    direct.driver = id;
    for (CellId r : readers[id]) {
      if (mn.cell(r).kind != MKind::kTcon) {
        direct.sinks.push_back(NetSink{SinkKind::kCellPin, r, 0});
      }
    }
    for (std::size_t po : po_of[id]) {
      const std::size_t lane = result.trace_lane_of_output[po];
      if (lane == npos) {
        direct.sinks.push_back(NetSink{SinkKind::kPrimaryOutput, kNullCell, po});
      } else {
        direct.sinks.push_back(NetSink{SinkKind::kTraceBuffer, kNullCell, lane});
      }
    }
    for (std::size_t l : latch_d_of[id]) {
      direct.sinks.push_back(
          NetSink{SinkKind::kCellPin, mn.latches()[l].output, 0});
    }
    if (!direct.sinks.empty()) {
      result.nets.push_back(std::move(direct));
    }

    // Conditional branches: one net per (driver, entered TCON, input pin).
    for (CellId r : readers[id]) {
      if (mn.cell(r).kind != MKind::kTcon) continue;
      const Flattened& f = flatten(flatten, r);
      const auto& pins = mn.cell(r).data_inputs;
      for (std::size_t i = 0; i < pins.size(); ++i) {
        if (pins[i] != id) continue;
        PhysNet branch;
        branch.driver = id;
        branch.sinks = f.sinks;
        branch.exclusive_group = std::max(f.group, static_cast<int>(r));
        branch.via_tcon = r;
        branch.via_input = i;
        if (!branch.sinks.empty()) result.nets.push_back(std::move(branch));
      }
    }
  }
  return result;
}

}  // namespace fpgadbg::pnr
