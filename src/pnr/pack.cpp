#include "pnr/pack.h"

#include <algorithm>
#include <set>

#include "support/error.h"

namespace fpgadbg::pnr {

using map::CellId;
using map::MappedNetlist;
using map::MKind;

Packing pack(const MappedNetlist& mn, const arch::ArchParams& params) {
  const int max_bles = params.cluster_size;
  const int max_inputs = params.effective_cluster_inputs();

  Packing packing;
  packing.cluster_of.assign(mn.num_cells(), -1);

  // Candidate cells: only LUT/TLUT occupy BLEs.
  std::vector<CellId> candidates;
  for (CellId id = 0; id < mn.num_cells(); ++id) {
    const MKind k = mn.cell(id).kind;
    if (k == MKind::kLut || k == MKind::kTlut) candidates.push_back(id);
  }

  // Connectivity: cell -> cells sharing a net (fanin or fanout).
  std::vector<std::vector<CellId>> adjacent(mn.num_cells());
  for (CellId id : candidates) {
    for (CellId in : mn.cell(id).data_inputs) {
      const MKind k = mn.cell(in).kind;
      if (k == MKind::kLut || k == MKind::kTlut) {
        adjacent[id].push_back(in);
        adjacent[in].push_back(id);
      }
    }
  }

  // Seed order: highest-degree first (stable for determinism).
  std::vector<CellId> order = candidates;
  std::stable_sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    return adjacent[a].size() > adjacent[b].size();
  });

  // Distinct external inputs a cluster would need if `cells` were packed.
  auto cluster_inputs = [&](const std::vector<CellId>& cells) {
    std::set<CellId> internal(cells.begin(), cells.end());
    std::set<CellId> external;
    for (CellId c : cells) {
      for (CellId in : mn.cell(c).data_inputs) {
        if (!internal.count(in)) external.insert(in);
      }
    }
    return external.size();
  };

  std::vector<bool> packed(mn.num_cells(), false);
  for (CellId seed : order) {
    if (packed[seed]) continue;
    Cluster cluster;
    cluster.bles.push_back(seed);
    packed[seed] = true;

    while (static_cast<int>(cluster.bles.size()) < max_bles) {
      // Best unpacked neighbour: most connections into the cluster.
      CellId best = map::kNullCell;
      std::size_t best_links = 0;
      std::set<CellId> in_cluster(cluster.bles.begin(), cluster.bles.end());
      std::set<CellId> seen;
      for (CellId member : cluster.bles) {
        for (CellId n : adjacent[member]) {
          if (packed[n] || !seen.insert(n).second) continue;
          std::size_t links = 0;
          for (CellId nn : adjacent[n]) {
            if (in_cluster.count(nn)) ++links;
          }
          if (links > best_links) {
            best_links = links;
            best = n;
          }
        }
      }
      if (best == map::kNullCell) break;
      std::vector<CellId> trial = cluster.bles;
      trial.push_back(best);
      if (cluster_inputs(trial) >
          static_cast<std::size_t>(max_inputs)) {
        // Input-limited: mark as unattractive for this cluster by stopping.
        break;
      }
      cluster.bles.push_back(best);
      packed[best] = true;
    }

    const int index = static_cast<int>(packing.clusters.size());
    for (CellId c : cluster.bles) packing.cluster_of[c] = index;
    packing.clusters.push_back(std::move(cluster));
  }
  return packing;
}

}  // namespace fpgadbg::pnr
