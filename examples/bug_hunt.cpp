// Bug hunt: localize an RTL bug with iterative re-parameterization.
//
// A processor-like circuit (or1200-style profile, scaled down) ships with an
// inadvertently inverted gate.  The debug loop compares trace windows
// against a golden software model, narrowing the observation window each
// turn.  Every turn is a parameter evaluation + partial reconfiguration; the
// conventional flow would recompile the FPGA design once per window.
#include <algorithm>
#include <cstdio>
#include <map>

#include "debug/session.h"
#include "genbench/genbench.h"
#include "sim/simulator.h"
#include "support/rng.h"

using namespace fpgadbg;

namespace {

std::vector<bool> stimulus(Rng& rng, std::size_t n) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.next_bool();
  return bits;
}

}  // namespace

int main() {
  // A scaled-down or1200-like core: deep, registered, 200 gates.
  genbench::CircuitSpec spec{"or1200_mini", 16, 12, 24, 200, 8, 6, 4242};
  const netlist::Netlist golden_design = genbench::generate(spec);

  // The bug: one gate's function is inverted (a classic wrong-polarity RTL
  // error).  In real life nobody knows this yet.
  netlist::Netlist buggy = golden_design;
  const std::string victim = "g137";
  const auto victim_id = *buggy.find(victim);
  buggy.rewrite_logic(victim_id, buggy.fanins(victim_id),
                      ~buggy.function(victim_id));
  std::printf("injected bug: inverted function of %s (the debug loop does "
              "not know this)\n\n",
              victim.c_str());

  // Offline stage on the buggy silicon-to-be.
  debug::OfflineOptions options;
  options.instrument.trace_width = 8;
  const auto offline = debug::run_offline(buggy, options);
  debug::DebugSession session(offline);
  sim::NetlistSimulator golden(golden_design);

  // The failure is first noticed at the primary outputs.
  {
    Rng rng(7);
    sim::MappedSimulator& dut = session.dut();
    golden.reset();
    bool mismatch = false;
    for (int cycle = 0; cycle < 64 && !mismatch; ++cycle) {
      const auto in = stimulus(rng, golden_design.inputs().size());
      dut.set_inputs(in);
      golden.set_inputs(in);
      dut.eval();
      golden.eval();
      for (std::size_t i = 0; i < golden_design.outputs().size(); ++i) {
        if (dut.output(i) != golden.output(i)) {
          std::printf("failure observed: output '%s' wrong at cycle %d\n",
                      golden_design.output_names()[i].c_str(), cycle);
          mismatch = true;
          break;
        }
      }
      dut.step();
      golden.step();
    }
    if (!mismatch) {
      std::printf("outputs agreed in the smoke window; widening the hunt\n");
    }
  }

  // Debug loop: sweep observation windows over all signals, every turn a
  // partial reconfiguration.  A signal is "suspicious" when its trace
  // diverges from the golden model; we record WHEN it first diverged,
  // because in a sequential circuit corrupted state eventually poisons
  // everything — the bug site is the earliest divergence.
  std::map<std::string, int> first_divergence;
  std::size_t turns = 0;
  double reconfig_total = 0.0;
  const auto& lanes = offline.instrumented.lane_signals;
  std::size_t max_index = 0;
  for (const auto& lane : lanes) max_index = std::max(max_index, lane.size());

  for (std::size_t index = 0; index < max_index; ++index) {
    std::vector<std::string> window;
    for (const auto& lane : lanes) {
      if (index < lane.size()) window.push_back(lane[index]);
    }
    std::sort(window.begin(), window.end());
    window.erase(std::unique(window.begin(), window.end()), window.end());
    std::vector<std::string> selected;
    for (const auto& name : window) {
      auto trial = selected;
      trial.push_back(name);
      try {
        (void)offline.instrumented.select_signals(trial);
        selected = std::move(trial);
      } catch (const Error&) {
        // lane conflict; this signal will come around in another window
      }
    }
    if (selected.empty()) continue;

    const auto turn = session.observe(selected);
    ++turns;
    reconfig_total += turn.turn_seconds;

    session.reset();
    golden.reset();
    Rng rng(7);  // identical stimulus every window
    for (int cycle = 0; cycle < 48; ++cycle) {
      const auto in = stimulus(rng, golden_design.inputs().size());
      golden.set_inputs(in);
      golden.eval();
      const BitVec& sample = session.step(in);
      for (std::size_t lane = 0; lane < session.num_lanes(); ++lane) {
        const auto id = golden_design.find(turn.observed[lane]);
        if (id && sample.get(lane) != golden.value(*id)) {
          auto [it, inserted] =
              first_divergence.try_emplace(turn.observed[lane], cycle);
          if (!inserted) it->second = std::min(it->second, cycle);
        }
      }
      golden.step();
    }
  }

  std::printf("\nswept every internal signal in %zu debugging turns "
              "(total reconfiguration cost: %.2f ms — one vendor recompile "
              "costs minutes to hours)\n",
              turns, reconfig_total * 1e3);
  std::printf("%zu signals diverge from the golden model\n",
              first_divergence.size());

  // Localization: the bug site diverges at the EARLIEST cycle; among the
  // signals that diverge in that first cycle, the topologically first one is
  // the root cause (everything after it is fault propagation).
  int first_cycle = 1 << 30;
  for (const auto& [name, cycle] : first_divergence) {
    first_cycle = std::min(first_cycle, cycle);
  }
  std::string root;
  for (const auto id : buggy.topo_order()) {
    const auto it = first_divergence.find(buggy.name(id));
    if (it != first_divergence.end() && it->second == first_cycle) {
      root = buggy.name(id);
      break;
    }
  }
  std::printf("earliest divergence at cycle %d; first diverging signal: "
              "'%s'\n",
              first_cycle, root.c_str());
  if (root == victim) {
    std::printf("=> bug localized to %s, which is exactly the injected "
                "fault site.  QED.\n",
                victim.c_str());
  } else {
    std::printf("=> inspect '%s' and its fanin cone (injected site was %s)\n",
                root.c_str(), victim.c_str());
  }
  return 0;
}
