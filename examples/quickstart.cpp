// Quickstart: the whole library in one page.
//
// 1. Build (or load) a circuit.
// 2. Run the OFFLINE stage once: signal parameterisation -> TCON mapping ->
//    place & route -> generalized (parameterized) bitstream.
// 3. Debug ONLINE: pick internal signals; each selection costs a Boolean
//    evaluation plus a partial reconfiguration — never a recompile.
#include <cstdio>

#include "debug/session.h"
#include "netlist/blif.h"
#include "support/rng.h"

using namespace fpgadbg;

int main() {
  // --- 1. a small sequential circuit (could also be netlist::read_blif_file)
  netlist::Netlist design("quickstart");
  const auto a = design.add_input("a");
  const auto b = design.add_input("b");
  const auto c = design.add_input("c");
  const auto q = design.add_latch("state", netlist::kNullNode, 0);
  const auto g1 = design.add_logic("g1", {a, b}, logic::tt_and(2));
  const auto g2 = design.add_logic("g2", {g1, c}, logic::tt_xor(2));
  const auto g3 = design.add_logic("g3", {g2, q}, logic::tt_or(2));
  const auto g4 = design.add_logic("g4", {g3, a}, logic::tt_nand(2));
  design.set_latch_input(0, g4);
  design.add_output(g3, "out");

  // --- 2. offline generic stage (run once)
  debug::OfflineOptions options;
  options.instrument.trace_width = 4;  // 4 trace-buffer lanes
  const auto offline = debug::run_offline(design, options);

  std::printf("offline stage:\n");
  std::printf("  observable signals : %zu\n",
              offline.instrumented.num_observable());
  std::printf("  parameters         : %zu (mux select lines)\n",
              offline.instrumented.netlist.params().size());
  std::printf("  mapped             : %zu LUTs, %zu TLUTs, %zu TCONs\n",
              offline.mapping.stats.num_luts, offline.mapping.stats.num_tluts,
              offline.mapping.stats.num_tcons);
  std::printf("  device             : %s\n",
              offline.compiled->report.device.c_str());
  std::printf("  generalized bitstream: %zu bits, %zu parameterized\n\n",
              offline.pconf->total_bits(),
              offline.pconf->num_parameterized_bits());

  // --- 3. online stage: two debugging turns with different signal sets
  debug::DebugSession session(offline);
  Rng rng(1);
  for (const std::vector<std::string> watch :
       {std::vector<std::string>{"g1", "g2"},
        std::vector<std::string>{"g4", "state"}}) {
    const auto turn = session.observe(watch);
    std::printf("observe {%s, %s}: %zu frames reconfigured in %.1f us "
                "(SCG eval %.1f us) — no recompilation\n",
                watch[0].c_str(), watch[1].c_str(), turn.frames_reconfigured,
                turn.reconfig_seconds * 1e6, turn.scg_eval_seconds * 1e6);

    session.reset();
    for (int cycle = 0; cycle < 8; ++cycle) {
      session.step({rng.next_bool(), rng.next_bool(), rng.next_bool()});
    }
    std::printf("  8-cycle trace, per lane:");
    for (std::size_t lane = 0; lane < session.num_lanes(); ++lane) {
      std::printf(" %s=", turn.observed[lane].c_str());
      for (const auto& sample : session.trace().read_window()) {
        std::printf("%d", sample.get(lane) ? 1 : 0);
      }
    }
    std::printf("\n");
  }

  const auto summary = session.summary();
  std::printf("\nsession: %zu turns, %zu cycles emulated, "
              "%.1f us spent on reconfiguration total\n",
              summary.turns, summary.cycles_emulated,
              (summary.total_eval_seconds + summary.total_reconfig_seconds) *
                  1e6);
  std::printf("the conventional flow would have recompiled %zu times "
              "(~%.2f s with this toolchain; hours with vendor tools)\n",
              summary.turns, summary.conventional_recompile_seconds);
  return 0;
}
