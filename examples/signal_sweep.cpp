// Signal sweep: "virtually enlarging the set of observed signals".
//
// The trace buffers only have W inputs, but the parameterized mux network
// lets the debugger walk observation windows across ALL internal nets of a
// design, one partial reconfiguration per window.  This example sweeps every
// net, records a waveform database, and totals what the same sweep would
// cost with recompile-per-window (the conventional flow of paper Fig. 4a).
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "debug/session.h"
#include "genbench/genbench.h"
#include "sim/vcd.h"
#include "support/rng.h"

using namespace fpgadbg;

int main() {
  genbench::CircuitSpec spec{"sweep_dut", 12, 8, 10, 120, 5, 6, 99};
  const netlist::Netlist design = genbench::generate(spec);

  debug::OfflineOptions options;
  options.instrument.trace_width = 8;
  const auto offline = debug::run_offline(design, options);
  debug::DebugSession session(offline);

  std::printf("design has %zu observable nets; trace buffer width is %zu\n",
              offline.instrumented.num_observable(), session.num_lanes());

  constexpr int kCycles = 32;
  std::map<std::string, std::string> waves;  // net -> bit string
  std::size_t turns = 0;
  double param_cost = 0.0;

  const auto& lanes = offline.instrumented.lane_signals;
  std::size_t max_index = 0;
  for (const auto& lane : lanes) max_index = std::max(max_index, lane.size());

  for (std::size_t index = 0; index < max_index; ++index) {
    std::vector<std::string> window;
    for (const auto& lane : lanes) {
      if (index < lane.size() && !waves.contains(lane[index])) {
        window.push_back(lane[index]);
      }
    }
    std::sort(window.begin(), window.end());
    window.erase(std::unique(window.begin(), window.end()), window.end());
    std::vector<std::string> selected;
    for (const auto& name : window) {
      auto trial = selected;
      trial.push_back(name);
      try {
        (void)offline.instrumented.select_signals(trial);
        selected = std::move(trial);
      } catch (const Error&) {
      }
    }
    if (selected.empty()) continue;

    const auto turn = session.observe(selected);
    ++turns;
    param_cost += turn.turn_seconds;

    // Re-run the SAME stimulus for every window so waveforms line up.
    session.reset();
    Rng rng(12345);
    for (int cycle = 0; cycle < kCycles; ++cycle) {
      std::vector<bool> in(design.inputs().size());
      for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool();
      const BitVec& sample = session.step(in);
      for (std::size_t lane = 0; lane < session.num_lanes(); ++lane) {
        const std::string& name = turn.observed[lane];
        auto [it, inserted] = waves.try_emplace(name, "");
        if (it->second.size() < static_cast<std::size_t>(kCycles)) {
          it->second.push_back(sample.get(lane) ? '1' : '0');
        }
      }
    }
  }

  std::printf("captured %d-cycle waveforms for %zu nets in %zu debugging "
              "turns\n\n",
              kCycles, waves.size(), turns);

  // A taste of the waveform database.
  int shown = 0;
  for (const auto& [name, wave] : waves) {
    if (++shown > 6) break;
    std::printf("  %-12s %s\n", name.c_str(), wave.c_str());
  }
  std::printf("  ... (%zu more)\n\n", waves.size() - 6);

  // Export the complete multi-window waveform database as a standard VCD —
  // as if the whole design had simulator-like observability (paper [12]).
  {
    std::vector<std::string> names;
    names.reserve(waves.size());
    for (const auto& [name, wave] : waves) names.push_back(name);
    std::vector<BitVec> samples(kCycles, BitVec(names.size()));
    for (std::size_t s = 0; s < names.size(); ++s) {
      const std::string& wave = waves[names[s]];
      for (std::size_t t = 0; t < wave.size() && t < samples.size(); ++t) {
        samples[t].set(s, wave[t] == '1');
      }
    }
    std::ofstream vcd("/tmp/fpgadbg_sweep.vcd");
    sim::write_vcd(vcd, names, samples, spec.name);
    std::printf("wrote /tmp/fpgadbg_sweep.vcd (%zu signals x %d cycles) — "
                "open it in any waveform viewer\n\n",
                names.size(), kCycles);
  }

  // Cost comparison (paper Fig. 4a vs 4b).
  const double recompile_each =
      offline.map_seconds + offline.pnr_seconds + offline.bitstream_seconds;
  std::printf("parameterized flow: %zu reconfigurations, %.2f ms total\n",
              turns, param_cost * 1e3);
  std::printf("conventional flow:  %zu recompilations, ~%.1f s with this "
              "toolchain (and hours with commercial tools on real designs)\n",
              turns, recompile_each * static_cast<double>(turns));
  std::printf("speedup of the debug cycle: %.0fx\n",
              recompile_each * static_cast<double>(turns) / param_cost);
  return 0;
}
