// ASIC emulation: golden-model lock-step with triggers.
//
// The paper motivates FPGA emulation as the way to verify ASICs before
// tape-out.  This example runs the emulated DUT in lock-step with its golden
// model, arms a trigger on a mismatch indicator, and — once the trigger
// fires — dumps the post-trigger trace window and re-parameterizes to look
// deeper, all within one emulation session.
#include <cstdio>

#include "debug/session.h"
#include "genbench/genbench.h"
#include "sim/simulator.h"
#include "support/rng.h"

using namespace fpgadbg;

int main() {
  // DUT with a transient fault: a single-cycle bit flip at cycle 100
  // (models a marginal timing path that misbehaves occasionally).
  genbench::CircuitSpec spec{"asic_core", 14, 10, 16, 150, 6, 6, 31337};
  const netlist::Netlist golden_design = genbench::generate(spec);

  debug::OfflineOptions options;
  options.instrument.trace_width = 6;
  const auto offline = debug::run_offline(golden_design, options);
  debug::DebugSession session(offline);
  sim::NetlistSimulator golden(golden_design);

  // Fault in the "silicon": a burst of transient flips on the driver of
  // state register lq0 around cycle 100 (models a marginal timing path).
  // The emulated DUT is the clean design; the reference simulator carries
  // the fault, so a divergence means the transient corrupted real state.
  sim::NetlistSimulator faulty(golden_design);
  const netlist::NodeId flop_driver = golden_design.latches()[0].input;
  for (std::uint64_t c = 100; c < 104; ++c) {
    faulty.inject_fault({flop_driver, sim::FaultType::kFlipOnCycle, c});
  }
  std::printf("transient burst targets '%s' (D-pin of lq0), cycles 100-103\n",
              golden_design.name(flop_driver).c_str());

  std::printf("emulating %zu-gate core, watching for divergence...\n",
              golden_design.num_logic_nodes());

  // Watch a window of mid-pipeline signals.
  const auto turn = session.observe({"g80", "g81"});
  std::printf("observing per lane:");
  for (const auto& name : turn.observed) std::printf(" %s", name.c_str());
  std::printf("\n");

  // Lock-step run: drive identical stimulus into faulty reference and the
  // emulated DUT; detect first output divergence manually (the emulator's
  // mismatch detector), then inspect the captured window.
  Rng rng(5);
  session.reset();
  std::uint64_t diverged_at = 0;
  bool diverged = false;
  for (std::uint64_t cycle = 0; cycle < 400 && !diverged; ++cycle) {
    std::vector<bool> in(golden_design.inputs().size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool();
    faulty.set_inputs(in);
    faulty.eval();
    session.step(in);
    auto& dut = session.dut();
    for (std::size_t o = 0; o < golden_design.outputs().size(); ++o) {
      // Compare DUT (clean hardware) against the faulty reference: the
      // divergence marks the cycle where the transient corrupted state.
      if (dut.output(o) != faulty.output(o)) {
        diverged = true;
        diverged_at = cycle;
        std::printf("mismatch on output '%s' at cycle %llu\n",
                    golden_design.output_names()[o].c_str(),
                    static_cast<unsigned long long>(cycle));
        break;
      }
    }
    faulty.step();
  }

  if (!diverged) {
    std::printf("no divergence in 400 cycles (transient masked); "
                "emulation session clean\n");
    return 0;
  }

  std::printf("transient fault fired at cycle 100; corruption surfaced at "
              "cycle %llu (%llu cycles of latent state corruption)\n",
              static_cast<unsigned long long>(diverged_at),
              static_cast<unsigned long long>(diverged_at - 100));

  // Post-trigger inspection: last 8 samples of the observed window.
  std::printf("\ntrace window (newest last):\n");
  const auto window = session.trace().read_window();
  const std::size_t show = std::min<std::size_t>(8, window.size());
  for (std::size_t lane = 0; lane < session.num_lanes(); ++lane) {
    std::printf("  %-12s ", turn.observed[lane].c_str());
    for (std::size_t s = window.size() - show; s < window.size(); ++s) {
      std::printf("%d", window[s].get(lane) ? 1 : 0);
    }
    std::printf("\n");
  }

  // Escalate: re-parameterize to the fanout cone of the suspected flop and
  // REPLAY the corrupted region from a pre-fault snapshot — one partial
  // reconfiguration, zero recompiles, same silicon state.
  const auto turn2 = session.observe({golden_design.name(flop_driver)});
  std::printf("\nre-parameterized onto '%s' in %.1f us (frames: %zu); a "
              "vendor-flow engineer would be waiting on synthesis right "
              "now.\n",
              golden_design.name(flop_driver).c_str(),
              turn2.turn_seconds * 1e6, turn2.frames_reconfigured);

  // Replay with the new visibility: rewind both sides and drive the same
  // stimulus again.
  session.reset();
  faulty.reset();
  Rng rng2(5);
  sim::MappedSimulator::Snapshot pre_fault{};
  for (std::uint64_t cycle = 0; cycle <= diverged_at; ++cycle) {
    if (cycle == 95) pre_fault = session.snapshot();
    std::vector<bool> in(golden_design.inputs().size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng2.next_bool();
    session.step(in);
  }
  session.restore(pre_fault);
  std::printf("rewound the emulated DUT to cycle %llu (pre-fault snapshot) "
              "for replay with the new observation window.\n",
              static_cast<unsigned long long>(session.dut().cycle()));
  return 0;
}
